// Package csalt is a from-scratch reproduction of "CSALT: Context Switch
// Aware Large TLB" (Marathe et al., MICRO-50, 2017): a multi-core
// memory-system simulator with virtualized (2-D nested) address
// translation, a part-of-memory L3 TLB (POM-TLB), and the CSALT TLB-aware
// dynamic cache-partitioning schemes, plus every baseline the paper
// evaluates against (conventional L1–L2 TLBs, unmanaged POM-TLB, TSB,
// DIP).
//
// Quick start:
//
//	cfg := csalt.DefaultConfig()
//	cfg.Mix = csalt.MixByIDMust("gups")
//	cfg.Scheme = csalt.SchemeCSALTCD
//	res, err := csalt.Run(cfg)
//	fmt.Println(res.IPCGeomean)
//
// The examples/ directory contains runnable scenarios; cmd/experiments
// regenerates every table and figure of the paper's evaluation.
package csalt

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	runtimedebug "runtime/debug"
	"sync"

	"github.com/csalt-sim/csalt/internal/cache"
	"github.com/csalt-sim/csalt/internal/checkpoint"
	"github.com/csalt-sim/csalt/internal/core"
	"github.com/csalt-sim/csalt/internal/sim"
	"github.com/csalt-sim/csalt/internal/snapshot"
	"github.com/csalt-sim/csalt/internal/workload"
)

// Config describes one simulated machine + workload pairing; see
// DefaultConfig for the paper's Table 2 machine.
type Config = sim.Config

// Results carries every measurement of a run (IPC, MPKIs, walk costs,
// occupancies, partition traces).
type Results = sim.Results

// Mix is a two-VM workload composition (Table 3).
type Mix = workload.Mix

// Benchmark names the synthetic workload models (§4.1).
type Benchmark = workload.Name

// Translation organisations below the L2 TLB.
const (
	OrgConventional = sim.OrgConventional // page walk on every L2 TLB miss
	OrgPOM          = sim.OrgPOM          // part-of-memory L3 TLB (CSALT's substrate)
	OrgTSB          = sim.OrgTSB          // software translation storage buffers
)

// Cache-management schemes.
const (
	SchemeNone    = core.None               // unpartitioned caches
	SchemeStatic  = core.Static             // fixed data/TLB split
	SchemeCSALTD  = core.Dynamic            // CSALT-D (Algorithm 1)
	SchemeCSALTCD = core.CriticalityDynamic // CSALT-CD (Algorithm 3)
)

// Replacement policies for the managed caches (§3.4).
const (
	PolicyLRU    = cache.PolicyLRU
	PolicyNRU    = cache.PolicyNRU
	PolicyBTPLRU = cache.PolicyBTPLRU
)

// Benchmarks of §4.1.
const (
	Canneal       = workload.Canneal
	CComp         = workload.CComp
	Graph500      = workload.Graph500
	GUPS          = workload.GUPS
	PageRank      = workload.PageRank
	StreamCluster = workload.StreamCluster
)

// DefaultConfig returns the paper's 8-core machine (Table 2) with
// run-control values scaled for simulator-sized runs.
func DefaultConfig() Config { return sim.DefaultConfig() }

// Run builds the system described by cfg and plays its workload to
// completion.
func Run(cfg Config) (*Results, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cooperative cancellation: the simulation polls
// ctx every few hundred steps and returns ctx.Err() (wrapped) once
// cancelled, so SIGINT-driven shutdowns stop a long run promptly.
func RunContext(ctx context.Context, cfg Config) (*Results, error) {
	return runOne(ctx, cfg, ManyOpts{})
}

// ManyOpts configures RunManyContext beyond the per-run Config: knobs
// that shape execution without affecting any measurement, so they stay
// out of Config (which keys memo caches and checkpoint stores).
type ManyOpts struct {
	// Parallel bounds the worker pool; <= 0 selects one worker per CPU.
	Parallel int
	// StallLimitCycles arms each run's forward-progress watchdog: a run
	// in which no instruction retires for this many simulated cycles
	// fails with a diagnostic queue dump instead of hanging the sweep.
	// Zero disables the guard.
	StallLimitCycles uint64
	// CheckInvariants arms each run's opt-in structural invariant
	// checkers (periodic mid-run conservation and partition audits) in
	// addition to the cheap always-on end-of-run pass. A violated
	// invariant fails that run with an invariant.Violation.
	CheckInvariants bool
	// SnapshotDir, when set, arms durable mid-run snapshots: each run
	// periodically persists its complete simulator state into this
	// directory (keyed by configuration), resumes from its newest valid
	// snapshot when one exists, and removes it on completion. Resumed
	// runs are byte-identical to uninterrupted ones; a damaged snapshot
	// is quarantined and the run starts from zero (see ROBUSTNESS.md,
	// "Mid-run snapshots").
	SnapshotDir string
	// SnapshotEvery is the snapshot cadence in simulation steps; 0
	// selects a sensible default. Ignored without SnapshotDir.
	SnapshotEvery uint64
}

// runOne executes a single configuration with panic isolation: a panic
// inside the simulator surfaces as this run's error, not a process crash.
func runOne(ctx context.Context, cfg Config, o ManyOpts) (res *Results, err error) {
	defer func() {
		if p := recover(); p != nil {
			stack := runtimedebug.Stack()
			if len(stack) > 4<<10 {
				stack = stack[:4<<10]
			}
			err = fmt.Errorf("csalt: simulation panicked: %v\n%s", p, stack)
		}
	}()
	s, clear, err := buildSystem(cfg, o)
	if err != nil {
		return nil, err
	}
	if o.StallLimitCycles > 0 {
		s.SetStallLimit(o.StallLimitCycles)
	}
	if o.CheckInvariants {
		s.EnableInvariantChecks(0)
	}
	res, err = s.RunContext(ctx)
	if err == nil {
		clear()
	}
	return res, err
}

// buildSystem constructs the run's system — restored from a valid mid-run
// snapshot when SnapshotDir holds one for this configuration, fresh
// otherwise — and returns the cleanup that removes the snapshot once the
// run completes. Damage of any kind (unreadable bytes, checksum, version
// or key mismatch, failed restore verification) quarantines the file and
// falls back to a from-zero start.
func buildSystem(cfg Config, o ManyOpts) (*sim.System, func(), error) {
	none := func() {}
	if o.SnapshotDir == "" {
		s, err := sim.New(cfg)
		return s, none, err
	}
	key, err := checkpoint.KeyOf(cfg)
	if err != nil {
		return nil, none, err
	}
	path := snapshot.PathFor(o.SnapshotDir, key)
	var s *sim.System
	if meta, st, rerr := snapshot.Read(path); rerr != nil {
		snapshot.Quarantine(path) //nolint:errcheck
	} else if st != nil && meta.Key == key {
		if restored, rerr := sim.RestoreSystem(cfg, st); rerr == nil {
			s = restored
		} else {
			snapshot.Quarantine(path) //nolint:errcheck
		}
	}
	if s == nil {
		if s, err = sim.New(cfg); err != nil {
			return nil, none, err
		}
	}
	s.EnableSnapshots(&fileSink{path: path, key: key}, o.SnapshotEvery)
	return s, func() { snapshot.Remove(path) }, nil //nolint:errcheck
}

// fileSink persists one run's snapshots to its keyed slot, fail-open: a
// failed write degrades the run to snapshot-free operation rather than
// failing it.
type fileSink struct {
	path, key string
	seq       uint64
}

func (k *fileSink) WriteSnapshot(st *snapshot.State, steps uint64) error {
	meta := snapshot.Meta{
		Schema: snapshot.Schema, Version: snapshot.Version,
		Key: k.key, Seq: k.seq, Steps: steps,
	}
	if err := snapshot.Write(k.path, meta, st, nil); err == nil {
		k.seq++
	}
	return nil
}

// RunMany executes several independent configurations across a bounded
// worker pool and returns their results in input order; see
// RunManyContext for the failure semantics.
func RunMany(cfgs []Config, parallel int) ([]*Results, error) {
	return RunManyContext(context.Background(), cfgs, ManyOpts{Parallel: parallel})
}

// RunManyContext executes several independent configurations across a
// bounded worker pool and returns their results in input order. Each
// simulation owns its entire world, so runs neither share state nor
// perturb each other; results are deterministic per configuration
// regardless of parallelism.
//
// Failures are isolated and aggregated: a panicking or failing
// configuration nils only its own result slot, every other configuration
// still runs, and the returned error joins one wrapped error per failure
// (each naming the configuration index and mix). Cancelling ctx stops
// in-flight simulations promptly; configurations not yet started are
// skipped with their slots left nil, and the cancellation is included in
// the joined error.
func RunManyContext(ctx context.Context, cfgs []Config, o ManyOpts) ([]*Results, error) {
	results := make([]*Results, len(cfgs))
	if len(cfgs) == 0 {
		return results, nil
	}
	parallel := o.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(cfgs) {
		parallel = len(cfgs)
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	idx := make(chan int)
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					continue
				}
				res, err := runOne(ctx, cfgs[i], o)
				if err != nil {
					if errors.Is(err, context.Canceled) {
						continue // interrupted, not failed
					}
					mu.Lock()
					errs = append(errs, fmt.Errorf("csalt: configuration %d (%s): %w", i, cfgs[i].Mix.ID, err))
					mu.Unlock()
					continue
				}
				results[i] = res
			}
		}()
	}
	for i := range cfgs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		errs = append(errs, fmt.Errorf("csalt: sweep interrupted: %w", err))
	}
	return results, errors.Join(errs...)
}

// Mixes returns the paper's ten workload compositions in x-axis order.
func Mixes() []Mix { return workload.Mixes() }

// MixByID looks a mix up by its paper label (e.g. "graph500_gups").
func MixByID(id string) (Mix, error) { return workload.MixByID(id) }

// MixByIDMust panics on unknown labels; for examples and tests.
func MixByIDMust(id string) Mix {
	m, err := workload.MixByID(id)
	if err != nil {
		panic(err)
	}
	return m
}

// HomogeneousMix builds a mix that co-schedules two instances of one
// benchmark, the paper's convention for single-name workloads.
func HomogeneousMix(b Benchmark) Mix {
	return Mix{ID: string(b), VM1: b, VM2: b}
}

// ParseBenchmark converts a string (accepting the paper's abbreviations)
// to a Benchmark.
func ParseBenchmark(s string) (Benchmark, error) { return workload.Parse(s) }
