package csalt

import "testing"

// facadeConfig returns a seconds-fast configuration for facade tests.
func facadeConfig() Config {
	cfg := DefaultConfig()
	cfg.Cores = 2
	cfg.Scale = 0.05
	cfg.MaxRefsPerCore = 20_000
	cfg.WarmupRefs = 4_000
	cfg.EpochLen = 4_000
	cfg.SwitchIntervalCycles = 40_000
	cfg.Mix = HomogeneousMix(GUPS)
	return cfg
}

func TestRunFacade(t *testing.T) {
	res, err := Run(facadeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.IPCGeomean <= 0 {
		t.Error("IPC not positive")
	}
	if res.OrgName != "pom" || res.SchemeName != "none" {
		t.Errorf("names = %q/%q", res.OrgName, res.SchemeName)
	}
}

func TestRunFacadeRejectsBadConfig(t *testing.T) {
	cfg := facadeConfig()
	cfg.Cores = 0
	if _, err := Run(cfg); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSchemesExposed(t *testing.T) {
	for _, scheme := range []struct {
		s    interface{ String() string }
		want string
	}{
		{SchemeNone, "none"},
		{SchemeStatic, "csalt-static"},
		{SchemeCSALTD, "csalt-d"},
		{SchemeCSALTCD, "csalt-cd"},
	} {
		if scheme.s.String() != scheme.want {
			t.Errorf("scheme %v != %q", scheme.s, scheme.want)
		}
	}
}

func TestMixHelpers(t *testing.T) {
	if len(Mixes()) != 10 {
		t.Errorf("Mixes() = %d entries", len(Mixes()))
	}
	m, err := MixByID("ccomp")
	if err != nil || m.VM1 != CComp {
		t.Errorf("MixByID = %+v, %v", m, err)
	}
	if _, err := MixByID("nope"); err == nil {
		t.Error("unknown mix accepted")
	}
	hm := HomogeneousMix(Canneal)
	if hm.VM1 != Canneal || hm.VM2 != Canneal || hm.ID != "canneal" {
		t.Errorf("HomogeneousMix = %+v", hm)
	}
	b, err := ParseBenchmark("strcls")
	if err != nil || b != StreamCluster {
		t.Errorf("ParseBenchmark = %v, %v", b, err)
	}
}

func TestMixByIDMustPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MixByIDMust("definitely-not-a-mix")
}

// TestSchemeOrderingEndToEnd is the repository's headline smoke check: on a
// TLB-hostile homogeneous mix, the conventional system must trail the
// POM-TLB baseline, and CSALT must not trail it meaningfully (at full
// scale it leads; tiny scale leaves a little noise).
func TestSchemeOrderingEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run ordering check")
	}
	cfg := facadeConfig()
	cfg.Scale = 0.15
	cfg.MaxRefsPerCore = 60_000
	cfg.WarmupRefs = 12_000

	conv := cfg
	conv.Org = OrgConventional
	convRes, err := Run(conv)
	if err != nil {
		t.Fatal(err)
	}
	pomRes, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cd := cfg
	cd.Scheme = SchemeCSALTCD
	cdRes, err := Run(cd)
	if err != nil {
		t.Fatal(err)
	}
	if convRes.IPCGeomean >= pomRes.IPCGeomean {
		t.Errorf("conventional (%.4f) did not trail POM-TLB (%.4f)",
			convRes.IPCGeomean, pomRes.IPCGeomean)
	}
	if cdRes.IPCGeomean < pomRes.IPCGeomean*0.97 {
		t.Errorf("CSALT-CD (%.4f) fell more than 3%% below POM-TLB (%.4f)",
			cdRes.IPCGeomean, pomRes.IPCGeomean)
	}
}
