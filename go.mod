module github.com/csalt-sim/csalt

go 1.22
