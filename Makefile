# Tier-1 verification and the correctness layer around the parallel
# experiment engine. `make check` is the pre-merge gate.

GO ?= go

.PHONY: build vet test test-short race race-short race-fault race-telemetry race-chaos race-fabric race-snapshot fabric-smoke fuzz fuzz-engines fuzz-snapshot equivalence alloc golden-update bench bench-json introspect-smoke check

# Every test invocation gets a hard -timeout (a wedged test must fail, not
# hang CI — the same philosophy as the simulator's own watchdogs) and
# -shuffle=on (order-dependent tests must not survive review).
TESTFLAGS ?= -timeout 10m -shuffle=on

build:
	$(GO) build ./...

# Static hygiene: go vet plus a gofmt drift check that fails loudly with
# the offending file list.
vet:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test $(TESTFLAGS) ./...

test-short:
	$(GO) test $(TESTFLAGS) -short ./...

# Full race run: includes the parallel-determinism test (fig7 at tiny
# scale under 1 and 8 workers) and the micro-scale engine sweeps.
race:
	$(GO) test $(TESTFLAGS) -race ./...

# Quick race smoke: the short-mode subset still runs TestRaceSmoke, which
# executes a concurrent experiment pair through the worker pool.
race-short:
	$(GO) test $(TESTFLAGS) -race -short ./...

# Race coverage of the robustness layer's concurrency paths — panic
# isolation, mid-sweep cancellation, per-job deadlines, checkpoint-store
# appends and kill/resume — including the tests that -short skips.
race-fault:
	$(GO) test $(TESTFLAGS) -race \
		-run 'Cancel|Panic|Timeout|Transient|Resume|KeepGoing|FailFast|Concurrent|Singleflight|Watchdog|Torn' \
		./internal/experiment/ ./internal/checkpoint/ ./internal/sim/

# Race coverage of the live telemetry plane: 8 concurrent scrapers against
# a live sweep (TestConcurrentScrapersDuringSweep), the SSE broadcaster,
# and the snapshot-publishing exposition path.
race-telemetry:
	$(GO) test $(TESTFLAGS) -race ./internal/telemetry/ ./internal/obs/

# Race coverage of the fault-injection plane: the chaos determinism test
# (same seed + schedule must reproduce the identical firing sequence and
# byte-identical tables run to run) plus the injection plane's own
# concurrent-firing budget test. -short skips only the 100-seed coverage
# sweep; the determinism and contract tests still run.
race-chaos:
	$(GO) test $(TESTFLAGS) -race -short ./internal/chaos/ ./internal/faultinject/

# Race coverage of the distributed sweep fabric: lease expiry and
# reassignment, hedged re-dispatch, duplicate-completion idempotence,
# coordinator restart recovery, graceful drain, and the over-the-wire
# chaos contract — every path asserting byte-identical tables. -short
# skips only the multi-second seeded chaos sweep.
race-fabric:
	$(GO) test $(TESTFLAGS) -race -short ./internal/fabric/

# Race coverage of the durable mid-run snapshot plane: the codec's
# corruption/torn-tail/version-skew detection, the sim-level
# byte-identical resume contract on both engines, and the runner's
# concurrent drain-stop/restore path. -short skips only the full
# equivalence-matrix resume sweep, which the plain test run still covers.
race-snapshot:
	$(GO) test $(TESTFLAGS) -race ./internal/snapshot/
	$(GO) test $(TESTFLAGS) -race -short -run 'TestSnapshot' ./internal/sim/
	$(GO) test $(TESTFLAGS) -race -run 'Snapshot' ./internal/experiment/

# Fabric end-to-end smoke, the acceptance scenario from the issue: a
# two-figure sweep sharded over workers with a worker killed mid-sweep
# and the coordinator restarted over its ledger, final tables' sha256
# equal to a clean single-process run — plus a real coordinator process
# driving in-process workers through cmd/experiments -serve.
fabric-smoke:
	$(GO) test $(TESTFLAGS) -run 'TestFabricSmoke|TestFabricChaosContract' ./internal/fabric/
	$(GO) run ./cmd/experiments -serve 127.0.0.1:0 -local-workers 2 \
		-run fig3 -scale tiny -quiet >/dev/null

# Bounded fuzz pass over the workload generators (footprint containment
# and seed determinism). Extend -fuzztime for deeper soaks.
fuzz:
	$(GO) test ./internal/workload/ -fuzz FuzzGenerator -fuzztime 30s

# Bounded fuzz pass over the fast-vs-reference engine equivalence: random
# valid configurations through both simulation datapaths, byte-identical
# metrics required. Extend -fuzztime for deeper soaks.
fuzz-engines:
	$(GO) test ./internal/sim/ -run '^$$' -fuzz FuzzEngineEquivalence -fuzztime 30s

# Bounded fuzz pass over the snapshot codec: encode→decode→re-encode must
# reproduce the exact bytes and single-byte damage must never decode
# silently. Extend -fuzztime for deeper soaks.
fuzz-snapshot:
	$(GO) test ./internal/snapshot/ -run '^$$' -fuzz FuzzSnapshotRoundTrip -fuzztime 30s

# Differential-equivalence suite: the curated fig3/fig8-style matrix plus
# the golden experiment tables, both engines, invariant checks armed.
equivalence:
	$(GO) test $(TESTFLAGS) -run 'EngineEquivalence' ./internal/sim/
	$(GO) test $(TESTFLAGS) -run TestGoldenTablesEngineInvariant ./internal/experiment/

# Allocation regression: the fast engine's steady-state step loop must
# stay allocation-free (internal/sim/alloc_test.go). Runs without -race —
# the detector's instrumentation makes allocation counts meaningless.
alloc:
	$(GO) test $(TESTFLAGS) -run ZeroAllocs ./internal/sim/

# Introspection smoke: the cross-engine attribution equivalence matrix
# (report byte-identical on both engines), the passivity and ledger
# tests, the zero-alloc and disabled-overhead gates, the golden-table
# compare with the plane attached, and a real attribution run through
# cmd/csaltsim with the conservation checkers armed (-check verifies
# every probe's cause buckets sum to the counters they shadow).
introspect-smoke:
	$(GO) test $(TESTFLAGS) -run 'Introspect|Attribution' ./internal/sim/ ./internal/benchreg/
	$(GO) test $(TESTFLAGS) -run TestDisabledIntrospectionGoldenTables ./internal/experiment/
	$(GO) run ./cmd/csaltsim -mix gups -cores 2 -refs 120000 -warmup 24000 -scale 0.05 -check \
		-attr-out /tmp/csalt-introspect-smoke.json -heatmap-csv /tmp/csalt-introspect-smoke.csv >/dev/null

# Regenerate the golden experiment tables after an intended change to
# simulator behaviour or table formatting.
golden-update:
	$(GO) test ./internal/experiment/ -run TestGoldenTables -update

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ .

# Benchmark-regression harness: run the bench suite plus the fixed
# throughput probe, write BENCH_<date>.json, and fail on >10% slowdowns
# against the latest prior report (see cmd/benchreg).
bench-json:
	$(GO) run ./cmd/benchreg -dir .

check: build vet test alloc race-short race-fault race-telemetry race-chaos race-fabric race-snapshot introspect-smoke
