package csalt

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one Benchmark per artifact, backed by internal/experiment) and
// benchmarks the simulator's own building blocks. Experiment benches run at
// the "tiny" scale so `go test -bench .` stays tractable; use
// `cmd/experiments -scale small|paper` for the full reproductions recorded
// in EXPERIMENTS.md.

import (
	"strconv"
	"testing"

	"github.com/csalt-sim/csalt/internal/cache"
	"github.com/csalt-sim/csalt/internal/experiment"
	"github.com/csalt-sim/csalt/internal/mem"
	"github.com/csalt-sim/csalt/internal/tlb"
	"github.com/csalt-sim/csalt/internal/workload"
)

// benchExperiment reruns one paper artifact per iteration and reports the
// value of the summary row's last numeric cell as the headline metric.
func benchExperiment(b *testing.B, id, metricName string) {
	b.Helper()
	e, ok := experiment.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var metric float64
	var sims int
	for i := 0; i < b.N; i++ {
		runner := experiment.NewRunner(experiment.Tiny)
		table, err := e.Run(runner)
		if err != nil {
			b.Fatal(err)
		}
		if n := table.NumRows(); n > 0 {
			// The summary (geomean/mean) row is last; its rightmost
			// parseable number is the headline value.
			for _, c := range table.Row(n - 1) {
				if v, err := strconv.ParseFloat(c, 64); err == nil {
					metric = v
				}
			}
		}
		sims = runner.NumRuns()
	}
	if metric != 0 {
		b.ReportMetric(metric, metricName)
	}
	b.ReportMetric(float64(sims), "simulations")
}

// One benchmark per paper artifact (DESIGN.md's per-experiment index).

func BenchmarkFig1ContextSwitchMPKI(b *testing.B) { benchExperiment(b, "fig1", "mpki-ratio") }
func BenchmarkTable1WalkCycles(b *testing.B)      { benchExperiment(b, "tab1", "walk-ratio") }
func BenchmarkFig3Occupancy(b *testing.B)         { benchExperiment(b, "fig3", "tlb-frac") }
func BenchmarkFig7Performance(b *testing.B)       { benchExperiment(b, "fig7", "csaltcd-vs-pom") }
func BenchmarkFig8WalksEliminated(b *testing.B)   { benchExperiment(b, "fig8", "eliminated") }
func BenchmarkFig9PartitionTrace(b *testing.B)    { benchExperiment(b, "fig9", "tlb-frac") }
func BenchmarkFig10L2MPKI(b *testing.B)           { benchExperiment(b, "fig10", "rel-mpki") }
func BenchmarkFig11L3MPKI(b *testing.B)           { benchExperiment(b, "fig11", "rel-mpki") }
func BenchmarkFig12Native(b *testing.B)           { benchExperiment(b, "fig12", "improvement") }
func BenchmarkFig13PriorWork(b *testing.B)        { benchExperiment(b, "fig13", "csaltcd-vs-pom") }
func BenchmarkFig14Contexts(b *testing.B)         { benchExperiment(b, "fig14", "gain-4ctx") }
func BenchmarkFig15Epoch(b *testing.B)            { benchExperiment(b, "fig15", "rel-ipc") }
func BenchmarkFig16SwitchInterval(b *testing.B)   { benchExperiment(b, "fig16", "gain") }

// Ablation benches (design choices DESIGN.md calls out).

func BenchmarkAblationStatic(b *testing.B) { benchExperiment(b, "ablation-static", "vs-pom") }
func BenchmarkAblationPolicy(b *testing.B) { benchExperiment(b, "ablation-policy", "vs-lru") }
func BenchmarkAblationPSC(b *testing.B)    { benchExperiment(b, "ablation-psc", "inflation") }
func BenchmarkAblationPOMPlacement(b *testing.B) {
	benchExperiment(b, "ablation-pom-placement", "vs-stacked")
}
func BenchmarkAblation5Level(b *testing.B)    { benchExperiment(b, "ablation-5level", "inflation") }
func BenchmarkAblationHugePages(b *testing.B) { benchExperiment(b, "ablation-hugepages", "mpki-cut") }
func BenchmarkAblationSharedTLB(b *testing.B) {
	benchExperiment(b, "ablation-sharedtlb", "vs-private")
}

// End-to-end simulator throughput: how many memory references per second
// the full system model retires.
func BenchmarkSystemThroughput(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Cores = 2
	cfg.Scale = 0.1
	cfg.MaxRefsPerCore = uint64(b.N)/2 + 10_000
	cfg.WarmupRefs = 0
	cfg.Scheme = SchemeCSALTCD
	cfg.Mix = HomogeneousMix(GUPS)
	b.ResetTimer()
	res, err := Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.IPCGeomean, "sim-ipc")
}

// Microbenchmarks of the hot building blocks.

func BenchmarkCacheLookup(b *testing.B) {
	c := cache.MustNew(cache.Config{Name: "b", SizeKB: 256, Ways: 4, Policy: cache.PolicyLRU})
	for i := 0; i < b.N; i++ {
		a := mem.PAddr(uint64(i) * 64 % (1 << 20))
		if !c.Lookup(a, cache.Data, false) {
			c.Fill(a, cache.Data, false)
		}
	}
}

func BenchmarkCacheLookupProfiled(b *testing.B) {
	c := cache.MustNew(cache.Config{
		Name: "b", SizeKB: 256, Ways: 4, Policy: cache.PolicyLRU,
		Profiled: true, ProfilerSampleShift: 3,
	})
	c.SetPartition(3)
	for i := 0; i < b.N; i++ {
		a := mem.PAddr(uint64(i) * 64 % (1 << 20))
		typ := cache.Data
		if i%4 == 0 {
			typ = cache.Translation
		}
		if !c.Lookup(a, typ, false) {
			c.Fill(a, typ, false)
		}
	}
}

func BenchmarkTLBLookup(b *testing.B) {
	t := tlb.MustNew(tlb.Config{Name: "b", Entries: 1536, Ways: 12, Latency: 17})
	for i := 0; i < 2048; i++ {
		t.Insert(mem.VAddr(i)<<12, 1, mem.PAddr(i)<<12, mem.Page4K)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(mem.VAddr(i%2048)<<12, 1)
	}
}

func BenchmarkPOMLookup(b *testing.B) {
	p := tlb.MustNewPOM(0x20_0000_0000, 16<<20)
	for i := 0; i < 1<<16; i++ {
		p.Insert(mem.VAddr(i)<<12, 1, mem.PAddr(i)<<12)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Lookup(mem.VAddr(i%(1<<16))<<12, 1)
	}
}

func BenchmarkWorkloadGen(b *testing.B) {
	src := workload.MustNew(workload.CComp, workload.Params{Seed: 1, Scale: 0.25})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Next()
	}
}
