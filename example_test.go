package csalt_test

import (
	"fmt"
	"log"

	"github.com/csalt-sim/csalt"
)

// Example runs the paper's headline comparison — an unmanaged POM-TLB
// versus CSALT-CD — on a deliberately tiny configuration so the example
// finishes quickly.
func Example() {
	cfg := csalt.DefaultConfig()
	cfg.Mix = csalt.HomogeneousMix(csalt.GUPS)
	cfg.Cores = 2
	cfg.Scale = 0.05
	cfg.MaxRefsPerCore = 20_000
	cfg.WarmupRefs = 4_000
	cfg.EpochLen = 4_000

	pom, err := csalt.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Scheme = csalt.SchemeCSALTCD
	cd, err := csalt.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(pom.IPCGeomean > 0 && cd.IPCGeomean > 0)
	fmt.Println(pom.WalksEliminated > 0.99)
	// Output:
	// true
	// true
}

// ExampleRun_conventional measures how much a conventional
// walk-on-every-miss system trails the POM-TLB organisation.
func ExampleRun_conventional() {
	cfg := csalt.DefaultConfig()
	cfg.Mix = csalt.HomogeneousMix(csalt.GUPS)
	cfg.Cores = 2
	cfg.Scale = 0.1
	cfg.MaxRefsPerCore = 30_000
	cfg.WarmupRefs = 6_000

	pom, err := csalt.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Org = csalt.OrgConventional
	conv, err := csalt.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(conv.IPCGeomean < pom.IPCGeomean)
	// Output:
	// true
}
