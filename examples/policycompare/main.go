// Policycompare pits every translation/cache-management scheme the paper
// evaluates against each other on one workload mix (the Figure 7/13
// comparison, in miniature): conventional walks, TSB, POM-TLB, DIP over
// POM-TLB, static partitioning, CSALT-D and CSALT-CD.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/csalt-sim/csalt"
)

func main() {
	mixID := "gups"
	if len(os.Args) > 1 {
		mixID = os.Args[1]
	}
	mix, err := csalt.MixByID(mixID)
	if err != nil {
		log.Fatal(err)
	}

	base := csalt.DefaultConfig()
	base.Mix = mix
	base.Cores = 4
	base.MaxRefsPerCore = 100_000
	base.WarmupRefs = 20_000
	base.EpochLen = 16_000

	type variant struct {
		name string
		mut  func(*csalt.Config)
	}
	variants := []variant{
		{"conventional", func(c *csalt.Config) { c.Org = csalt.OrgConventional }},
		{"tsb", func(c *csalt.Config) { c.Org = csalt.OrgTSB }},
		{"pom-tlb", func(c *csalt.Config) {}},
		{"pom+dip", func(c *csalt.Config) { c.DIP = true }},
		{"csalt-static", func(c *csalt.Config) { c.Scheme = csalt.SchemeStatic }},
		{"csalt-d", func(c *csalt.Config) { c.Scheme = csalt.SchemeCSALTD }},
		{"csalt-cd", func(c *csalt.Config) { c.Scheme = csalt.SchemeCSALTCD }},
	}

	var pomIPC float64
	fmt.Printf("mix %s: %s + %s, %d cores, 2 contexts/core\n\n", mix.ID, mix.VM1, mix.VM2, base.Cores)
	fmt.Printf("%-14s %8s %10s %12s %14s\n", "scheme", "IPC", "vs pom", "tlb mpki", "cyc/L2miss")
	for _, v := range variants {
		cfg := base
		v.mut(&cfg)
		res, err := csalt.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if v.name == "pom-tlb" {
			pomIPC = res.IPCGeomean
		}
		rel := "-"
		if pomIPC > 0 {
			rel = fmt.Sprintf("%.3f", res.IPCGeomean/pomIPC)
		}
		fmt.Printf("%-14s %8.3f %10s %12.1f %14.0f\n",
			v.name, res.IPCGeomean, rel, res.L2TLBMPKI, res.WalkCyclesPerL2Miss)
	}
	fmt.Println("\n(vs pom is only meaningful for rows after pom-tlb; run order matches Fig. 13)")
}
