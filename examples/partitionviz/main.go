// Partitionviz traces CSALT-CD's epoch-by-epoch way allocation on the
// paper's deep-dive workload (connectedcomponent, §5.1 / Figure 9),
// rendering the fraction of L2 and L3 cache ways granted to TLB entries
// over execution time as ASCII bars.
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/csalt-sim/csalt"
)

func bar(frac float64, width int) string {
	n := int(frac*float64(width) + 0.5)
	if n > width {
		n = width
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

func main() {
	cfg := csalt.DefaultConfig()
	cfg.Mix = csalt.HomogeneousMix(csalt.CComp)
	cfg.Scheme = csalt.SchemeCSALTCD
	cfg.RecordHistory = true
	cfg.Cores = 4
	cfg.MaxRefsPerCore = 250_000
	cfg.WarmupRefs = 20_000
	cfg.EpochLen = 10_000

	res, err := csalt.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("connectedcomponent x2 VMs, CSALT-CD — IPC %.3f, L2 TLB MPKI %.1f\n\n",
		res.IPCGeomean, res.L2TLBMPKI)
	fmt.Println("fraction of cache ways allocated to TLB entries, per epoch")
	fmt.Println("epoch   L2 D$ (core 0)            L3 D$ (shared)")

	l2, l3 := res.PartitionHistoryL2, res.PartitionHistoryL3
	n := len(l3)
	if len(l2) < n {
		n = len(l2)
	}
	if n == 0 {
		log.Fatal("no partition history recorded — run longer or shorten the epoch")
	}
	for i := 0; i < n; i++ {
		fmt.Printf("%5d   [%s] %.2f   [%s] %.2f\n",
			l3[i].Epoch,
			bar(l2[i].TLBFraction, 16), l2[i].TLBFraction,
			bar(l3[i].TLBFraction, 16), l3[i].TLBFraction)
	}
	fmt.Println("\nThe allocation tracks the workload's phases: scatter phases push")
	fmt.Println("translation pressure up and the controller responds, as in Fig. 9.")
}
