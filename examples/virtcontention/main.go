// Virtcontention reproduces the paper's motivation (§1–2) on one mix:
// it runs a workload alone, then co-scheduled with a second VM context,
// and shows (a) the L2 TLB miss blow-up from context switching (Fig. 1),
// (b) the cost of 2-D nested walks (Table 1), and (c) how much of the
// data caches ends up holding translation entries once a POM-TLB is added
// (Fig. 3).
package main

import (
	"fmt"
	"log"

	"github.com/csalt-sim/csalt"
)

func run(cfg csalt.Config) *csalt.Results {
	res, err := csalt.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	base := csalt.DefaultConfig()
	base.Mix = csalt.HomogeneousMix(csalt.Canneal)
	base.Cores = 4
	base.MaxRefsPerCore = 80_000
	base.WarmupRefs = 16_000

	// 1. Context-switch pressure on the conventional TLB hierarchy.
	solo := base
	solo.Org = csalt.OrgConventional
	solo.ContextsPerCore = 1
	soloRes := run(solo)

	duo := solo
	duo.ContextsPerCore = 2
	duoRes := run(duo)

	fmt.Println("== context-switch pressure (conventional TLBs) ==")
	fmt.Printf("1 context : L2 TLB MPKI %.1f\n", soloRes.L2TLBMPKI)
	fmt.Printf("2 contexts: L2 TLB MPKI %.1f  (%.1fx, %d switches)\n",
		duoRes.L2TLBMPKI, duoRes.L2TLBMPKI/soloRes.L2TLBMPKI, duoRes.ContextSwitches)

	// 2. The price of nested translation.
	native := duo
	native.Virtualized = false
	nativeRes := run(native)
	fmt.Println("\n== page-walk cost per L2 TLB miss ==")
	fmt.Printf("native 1-D walks     : %.0f cycles\n", nativeRes.WalkCyclesPerL2Miss)
	fmt.Printf("virtualized 2-D walks: %.0f cycles\n", duoRes.WalkCyclesPerL2Miss)

	// 3. What a POM-TLB does to the data caches.
	pom := base
	pomRes := run(pom)
	fmt.Println("\n== POM-TLB cache residency (unpartitioned) ==")
	fmt.Printf("walks eliminated: %.1f%%\n", 100*pomRes.WalksEliminated)
	fmt.Printf("TLB entries hold %.0f%% of L2 D$ and %.0f%% of L3 D$ capacity\n",
		100*pomRes.TLBOccupancyL2, 100*pomRes.TLBOccupancyL3)
	fmt.Println("\nThat residency is the contention CSALT's partitioning manages;")
	fmt.Println("run examples/partitionviz to watch it do so.")
}
