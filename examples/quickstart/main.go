// Quickstart: build the paper's 8-core machine, run a TLB-hostile workload
// mix under two VM contexts, and compare the POM-TLB baseline against
// CSALT-CD — the paper's headline configuration, in ~20 lines of API use.
package main

import (
	"fmt"
	"log"

	"github.com/csalt-sim/csalt"
)

func main() {
	cfg := csalt.DefaultConfig()
	cfg.Mix = csalt.MixByIDMust("gups") // two co-scheduled gups VMs
	// Keep the quickstart snappy: a short run on fewer cores.
	cfg.Cores = 4
	cfg.MaxRefsPerCore = 80_000
	cfg.WarmupRefs = 16_000
	cfg.EpochLen = 16_000

	baseline := cfg
	baseline.Scheme = csalt.SchemeNone // unmanaged POM-TLB
	basRes, err := csalt.Run(baseline)
	if err != nil {
		log.Fatal(err)
	}

	managed := cfg
	managed.Scheme = csalt.SchemeCSALTCD
	cdRes, err := csalt.Run(managed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s, %d cores, %d contexts/core\n",
		cfg.Mix.ID, cfg.Cores, cfg.ContextsPerCore)
	fmt.Printf("POM-TLB baseline : IPC %.3f  (L2 TLB MPKI %.1f, %.0f%% of walks eliminated)\n",
		basRes.IPCGeomean, basRes.L2TLBMPKI, 100*basRes.WalksEliminated)
	fmt.Printf("CSALT-CD         : IPC %.3f  (translation cost %.0f cycles per L2 TLB miss)\n",
		cdRes.IPCGeomean, cdRes.WalkCyclesPerL2Miss)
	fmt.Printf("speedup          : %.2fx\n", cdRes.IPCGeomean/basRes.IPCGeomean)
}
