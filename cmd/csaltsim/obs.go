package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/csalt-sim/csalt"
	"github.com/csalt-sim/csalt/internal/obs"
	"github.com/csalt-sim/csalt/internal/sim"
)

// obsFlags groups the observability and profiling flags; see
// OBSERVABILITY.md for the full reference.
type obsFlags struct {
	metricsOut  string
	traceOut    string
	traceFormat string
	traceEvents string
	epochCSV    string
	epochEvery  uint64
	epochCap    int
	pprofAddr   string
	cpuProfile  string
	memProfile  string
}

func registerObsFlags(f *obsFlags) {
	flag.StringVar(&f.metricsOut, "metrics-out", "", "write the end-of-run metrics snapshot (JSON) to this file ('-' for stdout)")
	flag.StringVar(&f.traceOut, "trace-out", "", "write the structured event trace to this file")
	flag.StringVar(&f.traceFormat, "trace-format", "jsonl", "trace encoding: jsonl | chrome")
	flag.StringVar(&f.traceEvents, "trace-events", "all", "comma-separated trace enable list: context_switch,repartition,pom_fill,pom_evict,pom,all,none")
	flag.StringVar(&f.epochCSV, "epoch-csv", "", "write the epoch time-series (CSV) to this file")
	flag.Uint64Var(&f.epochEvery, "epoch-every", 0, "memory references between epoch samples (0 = auto from run length)")
	flag.IntVar(&f.epochCap, "epoch-cap", 0, "epoch sample buffer capacity before downsampling (0 = default)")
	flag.StringVar(&f.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.StringVar(&f.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&f.memProfile, "memprofile", "", "write a heap profile to this file at exit")
}

// observed reports whether any per-run observability output was requested
// (profiling alone does not change the execution path).
func (f *obsFlags) observed() bool {
	return f.metricsOut != "" || f.traceOut != "" || f.epochCSV != ""
}

// suffixPath inserts a mix suffix before the path's extension:
// trace.jsonl + gups → trace_gups.jsonl. Used when several mixes each need
// their own output file.
func suffixPath(path, suffix string) string {
	if i := strings.LastIndexByte(path, '.'); i > strings.LastIndexByte(path, '/') {
		return path[:i] + "_" + suffix + path[i:]
	}
	return path + "_" + suffix
}

// outPath resolves the per-mix output path: with one configuration the
// flag value is used verbatim, with several each mix gets a suffixed file.
func outPath(path, mixID string, many bool) string {
	if path == "" || !many {
		return path
	}
	return suffixPath(path, mixID)
}

// runObserved executes the configurations sequentially, each with its own
// observer, and writes the requested artifacts. Sequential because each
// run owns its output files; observability runs are diagnostic, not
// sweeps.
func runObserved(cfgs []csalt.Config, f *obsFlags) ([]*csalt.Results, error) {
	format, err := obs.ParseFormat(f.traceFormat)
	if err != nil {
		return nil, err
	}
	mask, err := obs.ParseEvents(f.traceEvents)
	if err != nil {
		return nil, err
	}

	many := len(cfgs) > 1
	results := make([]*csalt.Results, len(cfgs))
	for i, cfg := range cfgs {
		res, err := runOneObserved(cfg, f, format, mask, many)
		if err != nil {
			return nil, fmt.Errorf("mix %s: %w", cfg.Mix.ID, err)
		}
		results[i] = res
	}
	return results, nil
}

func runOneObserved(cfg csalt.Config, f *obsFlags, format obs.Format, mask obs.EventMask, many bool) (*csalt.Results, error) {
	sys, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}

	o := &obs.Observer{SampleEvery: f.epochEvery}

	var traceFile *os.File
	if f.traceOut != "" {
		traceFile, err = os.Create(outPath(f.traceOut, cfg.Mix.ID, many))
		if err != nil {
			return nil, err
		}
		defer traceFile.Close()
		o.Tracer = obs.NewTracer(traceFile, format, mask)
	}
	if f.metricsOut != "" {
		o.Registry = obs.NewRegistry()
	}
	if f.epochCSV != "" {
		o.Sampler = obs.NewSampler(sim.SamplerColumns(), f.epochCap)
	}
	sys.AttachObserver(o)

	res, err := sys.Run()
	if err != nil {
		return nil, err
	}

	if o.Tracer != nil {
		if err := o.Tracer.Close(); err != nil {
			return nil, fmt.Errorf("writing trace: %w", err)
		}
	}
	if o.Registry != nil {
		if err := writeMetrics(o.Registry.Snapshot(), outPath(f.metricsOut, cfg.Mix.ID, many)); err != nil {
			return nil, err
		}
	}
	if o.Sampler != nil {
		out, err := os.Create(outPath(f.epochCSV, cfg.Mix.ID, many))
		if err != nil {
			return nil, err
		}
		defer out.Close()
		if err := o.Sampler.WriteCSV(out); err != nil {
			return nil, fmt.Errorf("writing epoch CSV: %w", err)
		}
	}
	return res, nil
}

func writeMetrics(snap obs.Snapshot, path string) error {
	if path == "-" {
		return snap.WriteJSON(os.Stdout)
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(out); err != nil {
		out.Close()
		return fmt.Errorf("writing metrics: %w", err)
	}
	return out.Close()
}
