package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/csalt-sim/csalt"
	"github.com/csalt-sim/csalt/internal/introspect"
	"github.com/csalt-sim/csalt/internal/obs"
	"github.com/csalt-sim/csalt/internal/sim"
	"github.com/csalt-sim/csalt/internal/telemetry"
)

// obsFlags groups the observability and profiling flags; see
// OBSERVABILITY.md for the full reference.
type obsFlags struct {
	metricsOut  string
	traceOut    string
	traceFormat string
	traceEvents string
	epochCSV    string
	epochEvery  uint64
	epochCap    int
	attrOut     string
	heatmapCSV  string
	listen      string
	pprofAddr   string
	cpuProfile  string
	memProfile  string
}

func registerObsFlags(f *obsFlags) {
	flag.StringVar(&f.metricsOut, "metrics-out", "", "write the end-of-run metrics snapshot (JSON) to this file ('-' for stdout)")
	flag.StringVar(&f.traceOut, "trace-out", "", "write the structured event trace to this file")
	flag.StringVar(&f.traceFormat, "trace-format", "jsonl", "trace encoding: jsonl | chrome")
	flag.StringVar(&f.traceEvents, "trace-events", "all", "comma-separated trace enable list: context_switch,repartition,pom_fill,pom_evict,pom,all,none")
	flag.StringVar(&f.epochCSV, "epoch-csv", "", "write the epoch time-series (CSV) to this file ('-' for stdout)")
	flag.StringVar(&f.attrOut, "attr-out", "", "attach the cycle/miss-attribution plane and write its report (JSON) to this file ('-' for stdout)")
	flag.StringVar(&f.heatmapCSV, "heatmap-csv", "", "write the attribution plane's per-set occupancy/contention heatmaps (CSV) to this file ('-' for stdout)")
	flag.StringVar(&f.listen, "listen", "", "serve the live telemetry plane on this address (e.g. localhost:9100): /metrics /healthz /readyz /events /runs")
	flag.Uint64Var(&f.epochEvery, "epoch-every", 0, "memory references between epoch samples (0 = auto from run length)")
	flag.IntVar(&f.epochCap, "epoch-cap", 0, "epoch sample buffer capacity before downsampling (0 = default)")
	flag.StringVar(&f.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.StringVar(&f.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&f.memProfile, "memprofile", "", "write a heap profile to this file at exit")
}

// observed reports whether any per-run observability output was requested
// (profiling alone does not change the execution path). -listen forces the
// observed path: live telemetry needs an observer on every system.
func (f *obsFlags) observed() bool {
	return f.metricsOut != "" || f.traceOut != "" || f.epochCSV != "" ||
		f.attrOut != "" || f.heatmapCSV != "" || f.listen != ""
}

// suffixPath inserts a mix suffix before the path's extension:
// trace.jsonl + gups → trace_gups.jsonl. Used when several mixes each need
// their own output file.
func suffixPath(path, suffix string) string {
	if i := strings.LastIndexByte(path, '.'); i > strings.LastIndexByte(path, '/') {
		return path[:i] + "_" + suffix + path[i:]
	}
	return path + "_" + suffix
}

// outPath resolves the per-mix output path: with one configuration the
// flag value is used verbatim, with several each mix gets a suffixed file.
func outPath(path, mixID string, many bool) string {
	if path == "" || !many {
		return path
	}
	return suffixPath(path, mixID)
}

// runObserved executes the configurations sequentially, each with its own
// observer, and writes the requested artifacts. Sequential because each
// run owns its output files; observability runs are diagnostic, not
// sweeps. A cancelled run still flushes whatever artifacts it accumulated
// (a partial trace of a run you had to kill is exactly the diagnostic you
// wanted), and remaining configurations are skipped with nil result slots.
func runObserved(ctx context.Context, cfgs []csalt.Config, f *obsFlags, stallLimit uint64, check bool) ([]*csalt.Results, error) {
	format, err := obs.ParseFormat(f.traceFormat)
	if err != nil {
		return nil, err
	}
	mask, err := obs.ParseEvents(f.traceEvents)
	if err != nil {
		return nil, err
	}

	// Opt-in live telemetry: every run's registry is scraped on /metrics
	// while it executes, epoch samples stream over /events, and a stall
	// watchdog failure degrades /healthz.
	var tel *telemetry.Server
	if f.listen != "" {
		tel, err = telemetry.Start(f.listen)
		if err != nil {
			return nil, err
		}
		defer tel.Close()
		// The configuration list is already primed when we get here.
		tel.Health.SetReady(true)
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/{metrics,healthz,readyz,events,runs}\n", tel.Addr())
	}

	many := len(cfgs) > 1
	results := make([]*csalt.Results, len(cfgs))
	for i, cfg := range cfgs {
		if ctx.Err() != nil {
			return results, fmt.Errorf("observed run interrupted: %w", context.Cause(ctx))
		}
		res, err := runOneObserved(ctx, cfg, f, format, mask, many, stallLimit, check, tel)
		if err != nil {
			return results, fmt.Errorf("mix %s: %w", cfg.Mix.ID, err)
		}
		results[i] = res
	}
	return results, nil
}

func runOneObserved(ctx context.Context, cfg csalt.Config, f *obsFlags, format obs.Format, mask obs.EventMask, many bool, stallLimit uint64, check bool, tel *telemetry.Server) (*csalt.Results, error) {
	sys, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	if stallLimit > 0 {
		sys.SetStallLimit(stallLimit)
	}
	if check {
		sys.EnableInvariantChecks(0)
	}

	o := &obs.Observer{SampleEvery: f.epochEvery}

	var traceFile *os.File
	if f.traceOut != "" {
		traceFile, err = createFile(outPath(f.traceOut, cfg.Mix.ID, many))
		if err != nil {
			return nil, err
		}
		defer traceFile.Close()
		o.Tracer = obs.NewTracer(traceFile, format, mask)
	}
	if f.metricsOut != "" || tel != nil {
		o.Registry = obs.NewRegistry()
	}
	if f.epochCSV != "" || tel != nil {
		o.Sampler = obs.NewSampler(sim.SamplerColumns(), f.epochCap)
	}
	sys.AttachObserver(o)

	// Attribution attaches after the observer so switch-damage/phase
	// events reach the trace and introspect.* counters reach the registry.
	var plane *introspect.Plane
	if f.attrOut != "" || f.heatmapCSV != "" {
		plane = introspect.NewPlane(introspect.Config{Cores: cfg.Cores})
		sys.AttachIntrospection(plane)
	}

	if tel != nil {
		release := tel.AddSystem(sys, o)
		defer release()
	}

	res, runErr := sys.RunContext(ctx)
	if tel != nil && runErr != nil {
		var stall *sim.StallError
		if errors.As(runErr, &stall) {
			tel.Health.Degrade(fmt.Sprintf("stall watchdog fired on mix %s: no retirement for %d cycles",
				cfg.Mix.ID, stall.Cycle-stall.LastProgress))
		}
	}

	// Flush artifacts even when the run was cut short: the events, metrics
	// and epoch samples up to the cancellation point are already in the
	// observer and are often the whole reason the run was observed.
	if o.Tracer != nil {
		if err := o.Tracer.Close(); err != nil && runErr == nil {
			return nil, fmt.Errorf("writing trace: %w", err)
		}
	}
	if f.metricsOut != "" {
		if err := writeMetrics(o.Registry.Snapshot(), outPath(f.metricsOut, cfg.Mix.ID, many)); err != nil && runErr == nil {
			return nil, err
		}
	}
	if f.epochCSV != "" {
		if err := writeEpochCSV(o.Sampler, outPath(f.epochCSV, cfg.Mix.ID, many)); err != nil && runErr == nil {
			return nil, err
		}
	}
	if f.attrOut != "" {
		if err := writeTo(outPath(f.attrOut, cfg.Mix.ID, many), plane.WriteReport); err != nil && runErr == nil {
			return nil, fmt.Errorf("writing attribution report: %w", err)
		}
	}
	if f.heatmapCSV != "" {
		if err := writeTo(outPath(f.heatmapCSV, cfg.Mix.ID, many), plane.WriteHeatmapCSV); err != nil && runErr == nil {
			return nil, fmt.Errorf("writing heatmap CSV: %w", err)
		}
	}
	return res, runErr
}

// writeTo streams write(w) to path ('-' for stdout).
func writeTo(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	out, err := createFile(path)
	if err != nil {
		return err
	}
	if err := write(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// createFile opens path for writing, creating missing parent directories
// so `-trace-out out/run/trace.jsonl` works without a prior mkdir.
func createFile(path string) (*os.File, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return os.Create(path)
}

// writeEpochCSV flushes the sampler's series to path ('-' for stdout).
func writeEpochCSV(s *obs.Sampler, path string) error {
	if path == "-" {
		return s.WriteCSV(os.Stdout)
	}
	out, err := createFile(path)
	if err != nil {
		return err
	}
	if err := s.WriteCSV(out); err != nil {
		out.Close()
		return fmt.Errorf("writing epoch CSV: %w", err)
	}
	return out.Close()
}

func writeMetrics(snap obs.Snapshot, path string) error {
	if path == "-" {
		return snap.WriteJSON(os.Stdout)
	}
	out, err := createFile(path)
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(out); err != nil {
		out.Close()
		return fmt.Errorf("writing metrics: %w", err)
	}
	return out.Close()
}
