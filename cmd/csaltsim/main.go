// Command csaltsim runs simulated configurations and prints their
// measurements.
//
//	csaltsim -mix ccomp -scheme csalt-cd
//	csaltsim -mix graph500_gups -org conventional -contexts 4 -cores 8
//	csaltsim -vm1 canneal -vm2 gups -scheme csalt-d -refs 500000
//	csaltsim -mix ccomp,gups,canneal -scheme csalt-cd -parallel 4
//
// All of Table 2's machine parameters are built in; the flags select the
// workload, translation organisation, cache-management scheme and run
// length. -mix accepts a comma-separated list: the mixes share every other
// flag, run concurrently across -parallel workers, and print in the order
// given (each simulation is independent and deterministic, so the output
// does not depend on the parallelism level).
//
// SIGINT/SIGTERM cancel in-flight simulations cooperatively; observed runs
// still flush whatever trace/metrics/epoch artifacts accumulated before
// the signal. -snapshot-dir arms durable mid-run snapshots: interrupted
// configurations resume from their newest valid snapshot on the next
// invocation with the same flags, byte-identical to an uninterrupted run
// (see ROBUSTNESS.md, "Mid-run snapshots"). Exit codes: 0 success, 1
// simulation failure, 2 usage/config error, 130 interrupted.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"github.com/csalt-sim/csalt"
	"github.com/csalt-sim/csalt/internal/obs"
)

// usageFail reports a usage/configuration error (bad flag value, unknown
// mix/org/scheme) and exits 2, distinguishable from simulation failures.
func usageFail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

// simFail reports a simulation failure and exits 1.
func simFail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		mixID    = flag.String("mix", "", "paper mix id(s), comma separated (e.g. ccomp or ccomp,gups); overrides -vm1/-vm2")
		vm1      = flag.String("vm1", "gups", "benchmark for VM 1")
		vm2      = flag.String("vm2", "", "benchmark for VM 2 (defaults to vm1)")
		org      = flag.String("org", "pom", "translation organisation: conventional | pom | tsb")
		scheme   = flag.String("scheme", "none", "cache scheme: none | static | csalt-d | csalt-cd")
		dip      = flag.Bool("dip", false, "enable DIP insertion")
		cores    = flag.Int("cores", 8, "number of cores")
		contexts = flag.Int("contexts", 2, "VM contexts per core")
		native   = flag.Bool("native", false, "native (1-D) translation instead of virtualized 2-D")
		refs     = flag.Uint64("refs", 300_000, "memory references per core (including warmup)")
		warmup   = flag.Uint64("warmup", 60_000, "warmup references per core")
		scale    = flag.Float64("scale", 0.25, "workload footprint scale")
		seed     = flag.Uint64("seed", 1, "workload seed")
		parallel = flag.Int("parallel", runtime.NumCPU(), "simulations to run concurrently when -mix lists several")
		history  = flag.Bool("history", false, "print the per-epoch partition trace")
		jsonOut  = flag.Bool("json", false, "emit the full Results struct(s) as JSON")
		stallCyc = flag.Uint64("stall-cycles", 10_000_000, "forward-progress watchdog: fail a run if no instruction retires for this many simulated cycles (0 = off)")
		check    = flag.Bool("check", false, "arm the opt-in structural model-invariant checkers (periodic conservation and partition audits); a violation fails the run")
		snapDir  = flag.String("snapshot-dir", "", "write durable mid-run snapshots into this directory and resume interrupted configurations from their newest valid snapshot (see ROBUSTNESS.md)")
		snapEvry = flag.Uint64("snapshot-every", 0, "with -snapshot-dir: snapshot cadence in simulation steps (0 = a sensible default)")
	)
	var of obsFlags
	registerObsFlags(&of)
	flag.Parse()

	prof, err := obs.StartProfiling(of.pprofAddr, of.cpuProfile, of.memProfile)
	if err != nil {
		usageFail("profiling: %v", err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
		}
	}()

	base := csalt.DefaultConfig()
	base.Cores = *cores
	base.ContextsPerCore = *contexts
	base.Virtualized = !*native
	base.MaxRefsPerCore = *refs
	base.WarmupRefs = *warmup
	base.Scale = *scale
	base.Seed = *seed
	base.DIP = *dip
	base.RecordHistory = *history

	switch *org {
	case "conventional":
		base.Org = csalt.OrgConventional
	case "pom":
		base.Org = csalt.OrgPOM
	case "tsb":
		base.Org = csalt.OrgTSB
	default:
		usageFail("unknown org %q", *org)
	}
	switch *scheme {
	case "none":
		base.Scheme = csalt.SchemeNone
	case "static":
		base.Scheme = csalt.SchemeStatic
	case "csalt-d":
		base.Scheme = csalt.SchemeCSALTD
	case "csalt-cd":
		base.Scheme = csalt.SchemeCSALTCD
	default:
		usageFail("unknown scheme %q", *scheme)
	}

	var cfgs []csalt.Config
	if *mixID != "" {
		for _, id := range strings.Split(*mixID, ",") {
			mix, err := csalt.MixByID(strings.TrimSpace(id))
			if err != nil {
				usageFail("%v", err)
			}
			cfg := base
			cfg.Mix = mix
			cfgs = append(cfgs, cfg)
		}
	} else {
		b1, err := csalt.ParseBenchmark(*vm1)
		if err != nil {
			usageFail("%v", err)
		}
		b2 := b1
		if *vm2 != "" {
			if b2, err = csalt.ParseBenchmark(*vm2); err != nil {
				usageFail("%v", err)
			}
		}
		cfg := base
		cfg.Mix = csalt.Mix{ID: fmt.Sprintf("%s_%s", b1, b2), VM1: b1, VM2: b2}
		cfgs = append(cfgs, cfg)
	}

	// Ctrl-C / SIGTERM cancel in-flight simulations cooperatively; finished
	// results still print and observed runs flush partial artifacts.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var results []*csalt.Results
	var runErr error
	if of.observed() {
		// Observed runs go through sim directly so the observer can attach
		// to each freshly built system; they run sequentially, each owning
		// its output files. Their incrementally written artifacts (traces,
		// epoch CSVs) are not covered by snapshots, so the two are mutually
		// exclusive.
		if *snapDir != "" {
			usageFail("-snapshot-dir is incompatible with observation flags (trace/epoch artifacts cannot resume mid-run)")
		}
		results, runErr = runObserved(ctx, cfgs, &of, *stallCyc, *check)
	} else {
		if *snapEvry > 0 && *snapDir == "" {
			usageFail("-snapshot-every needs -snapshot-dir")
		}
		results, runErr = csalt.RunManyContext(ctx, cfgs, csalt.ManyOpts{
			Parallel:         *parallel,
			StallLimitCycles: *stallCyc,
			CheckInvariants:  *check,
			SnapshotDir:      *snapDir,
			SnapshotEvery:    *snapEvry,
		})
	}

	// Print every configuration that finished before reporting failures, so
	// an interrupted or partially failed multi-mix run is not all-or-nothing.
	printed := 0
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		for _, res := range results {
			if res == nil {
				continue
			}
			if err := enc.Encode(res); err != nil {
				simFail("encoding results: %v", err)
			}
			printed++
		}
	} else {
		for i, res := range results {
			if res == nil {
				continue
			}
			if printed > 0 {
				fmt.Println()
			}
			report(cfgs[i], res, *history)
			printed++
		}
	}

	if runErr != nil {
		if errors.Is(runErr, context.Canceled) {
			fmt.Fprintf(os.Stderr, "interrupted: %d of %d simulations finished\n", printed, len(cfgs))
			os.Exit(130)
		}
		simFail("simulation failed: %v", runErr)
	}
}

// report prints one configuration's measurements in the tool's standard
// key-value layout.
func report(cfg csalt.Config, res *csalt.Results, history bool) {
	fmt.Printf("mix=%s org=%s scheme=%s cores=%d contexts=%d virtualized=%v\n",
		cfg.Mix.ID, res.OrgName, res.SchemeName, cfg.Cores, cfg.ContextsPerCore, cfg.Virtualized)
	fmt.Printf("IPC (geomean)            %8.4f\n", res.IPCGeomean)
	fmt.Printf("instructions measured    %8d\n", res.Instructions)
	fmt.Printf("L1 TLB MPKI              %8.2f\n", res.L1TLBMPKI)
	fmt.Printf("L2 TLB MPKI              %8.2f\n", res.L2TLBMPKI)
	fmt.Printf("translation cyc/L2 miss  %8.1f\n", res.WalkCyclesPerL2Miss)
	fmt.Printf("page walks               %8d (%.1f%% eliminated)\n", res.PageWalks, 100*res.WalksEliminated)
	fmt.Printf("L2 D$ MPKI               %8.2f (data-only %.2f)\n", res.L2DMPKI, res.L2DataMPKI)
	fmt.Printf("L3 D$ MPKI               %8.2f (data-only %.2f)\n", res.L3DMPKI, res.L3DataMPKI)
	fmt.Printf("TLB occupancy L2/L3      %7.1f%% / %.1f%%\n", 100*res.TLBOccupancyL2, 100*res.TLBOccupancyL3)
	if cfg.Org == csalt.OrgPOM {
		fmt.Printf("POM-TLB hit rate         %7.1f%%\n", 100*res.POMHitRate)
	}
	fmt.Printf("context switches         %8d\n", res.ContextSwitches)
	fmt.Printf("translation stall frac   %7.1f%%\n", 100*res.TranslateStallFrac)
	fmt.Printf("pages touched            %8d\n", res.TouchedPages)

	if history {
		fmt.Println("\nepoch  L2 TLB frac  L3 TLB frac")
		n := len(res.PartitionHistoryL3)
		if len(res.PartitionHistoryL2) < n {
			n = len(res.PartitionHistoryL2)
		}
		for i := 0; i < n; i++ {
			fmt.Printf("%5d  %11.2f  %11.2f\n", res.PartitionHistoryL3[i].Epoch,
				res.PartitionHistoryL2[i].TLBFraction, res.PartitionHistoryL3[i].TLBFraction)
		}
	}
}
