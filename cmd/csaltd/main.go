// Command csaltd is the sweep-fabric worker daemon: it pulls simulation
// jobs from a coordinator (experiments -serve), executes them with the
// standard runner, and streams results back over HTTP.
//
//	csaltd -coordinator http://host:8090
//	csaltd -coordinator http://host:8090 -name rack7 -parallel 4 -listen :9101
//
// Jobs arrive as complete simulator configurations, so a worker needs no
// local knowledge of the experiment suite; results are keyed by the
// configuration's checkpoint key and recorded in the coordinator's ledger,
// making every completion idempotent (duplicate completions from hedged or
// reassigned leases are byte-identical no-ops).
//
// Graceful drain: SIGTERM stops leasing new jobs, finishes and reports the
// jobs in flight, flips /readyz (when -listen is set) to 503, notifies the
// coordinator, and exits 0. With -snapshot-dir the drain is faster and
// loses no work: in-flight jobs stop at their next poll boundary with a
// durable mid-run snapshot persisted, their leases expire, and the workers
// reassigned those jobs resume from the snapshots (see ROBUSTNESS.md,
// "Mid-run snapshots"). SIGINT cancels hard and exits 130; in-flight
// leases then expire on the coordinator and the jobs are reassigned.
// SIGQUIT dumps live diagnostics (goroutine stacks, in-flight counts,
// snapshot age) to stderr without exiting.
//
// Fault injection (-chaos) arms the wire seams for the robustness
// harness: "worker.kill:1@2" crashes the worker as it takes its 2nd
// lease, "link.partition:2" fails two coordinator round trips (see
// ROBUSTNESS.md, "Distributed sweeps").
//
// Exit codes: 0 clean (sweep done or drained), 1 fatal error or injected
// kill, 2 usage error, 130 interrupted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"github.com/csalt-sim/csalt/internal/experiment"
	"github.com/csalt-sim/csalt/internal/fabric"
	"github.com/csalt-sim/csalt/internal/faultinject"
	"github.com/csalt-sim/csalt/internal/obs"
	"github.com/csalt-sim/csalt/internal/telemetry"
)

const (
	exitFailure     = 1
	exitUsage       = 2
	exitInterrupted = 130
)

func main() {
	var (
		coordinator = flag.String("coordinator", "", "coordinator base URL (required), e.g. http://host:8090")
		name        = flag.String("name", "", "worker identity (default csaltd-<hostname>-<pid>)")
		parallel    = flag.Int("parallel", 1, "concurrent jobs; >1 registers as <name>/0..N-1")
		poll        = flag.Duration("poll", 200*time.Millisecond, "idle lease-poll interval")
		stallCycles = flag.Uint64("stall-cycles", 10_000_000, "in-simulator forward-progress watchdog (0 = off)")
		check       = flag.Bool("check", false, "arm mid-run model invariant checking on every simulation")
		retries     = flag.Int("retries", 0, "local bounded retries for transient failures before reporting to the coordinator")
		chaosSpec   = flag.String("chaos", "", "fault-injection schedule incl. wire seams worker.kill/link.partition")
		listen      = flag.String("listen", "", "serve this worker's telemetry plane on this address (/metrics /healthz /readyz /events /runs)")
		snapDir     = flag.String("snapshot-dir", "", "write durable mid-run snapshots of in-flight jobs into this directory and resume leased jobs from their newest valid snapshot")
		snapEvery   = flag.Uint64("snapshot-every", 0, "with -snapshot-dir: snapshot cadence in simulation steps (0 = a sensible default)")
	)
	flag.Parse()

	if *coordinator == "" {
		fmt.Fprintln(os.Stderr, "csaltd: -coordinator is required")
		os.Exit(exitUsage)
	}
	if *name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "anon"
		}
		*name = fmt.Sprintf("csaltd-%s-%d", host, os.Getpid())
	}
	if *parallel < 1 {
		*parallel = 1
	}

	var plane *faultinject.Plane
	if *chaosSpec != "" {
		sched, err := faultinject.Parse(*chaosSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "csaltd: %v\n", err)
			os.Exit(exitUsage)
		}
		plane = faultinject.New(sched)
	}

	// One shared runner: concurrent lease loops singleflight duplicate
	// configurations through its memo cache. KeepGoing stays false so
	// failures surface to the coordinator's retry/quarantine machinery.
	runner := experiment.NewRunner(experiment.Scale{Name: "fabric-worker"})
	runner.StallLimit = *stallCycles
	runner.CheckInvariants = *check
	runner.MaxRetries = *retries
	runner.Retry = experiment.DefaultBackoff(1)
	runner.Chaos = plane
	if *snapEvery > 0 && *snapDir == "" {
		fmt.Fprintln(os.Stderr, "csaltd: -snapshot-every needs -snapshot-dir")
		os.Exit(exitUsage)
	}
	runner.SnapshotDir = *snapDir
	runner.SnapshotEvery = *snapEvery

	var tel *telemetry.Server
	if *listen != "" {
		var err error
		tel, err = telemetry.Start(*listen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "csaltd: %v\n", err)
			os.Exit(exitUsage)
		}
		defer tel.Close()
		tel.AttachRunner(runner)
		tel.Events.SetChaos(plane)
		fmt.Fprintf(os.Stderr, "csaltd: telemetry on http://%s\n", tel.Addr())
	}

	workers := make([]*fabric.Worker, *parallel)
	for i := range workers {
		wname := *name
		if *parallel > 1 {
			wname = fmt.Sprintf("%s/%d", *name, i)
		}
		w, err := fabric.NewWorker(fabric.WorkerOptions{
			Name: wname, BaseURL: *coordinator, Runner: runner,
			Chaos: plane, Poll: *poll, Backoff: experiment.DefaultBackoff(1),
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "csaltd: %v\n", err)
			os.Exit(exitUsage)
		}
		workers[i] = w
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// SIGTERM drains: stop leasing, finish in flight, report, exit clean.
	// SIGINT (or a second SIGTERM) cancels hard: leases expire on the
	// coordinator and the abandoned jobs are reassigned.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	interrupted := make(chan struct{})
	go func() {
		hard := func(sig os.Signal) {
			fmt.Fprintf(os.Stderr, "csaltd: %v: cancelling in-flight work\n", sig)
			close(interrupted)
			cancel()
		}
		sig := <-sigCh
		if sig == syscall.SIGTERM {
			if *snapDir != "" {
				// Snapshot drain: in-flight jobs stop at their next poll
				// boundary with a final snapshot persisted, their leases
				// expire, and whichever worker is reassigned them resumes
				// mid-run instead of from cycle zero.
				fmt.Fprintln(os.Stderr, "csaltd: SIGTERM: draining (snapshotting in-flight jobs)")
				runner.SnapshotStopAll()
			} else {
				fmt.Fprintln(os.Stderr, "csaltd: SIGTERM: draining (finishing in-flight jobs)")
			}
			if tel != nil {
				tel.Health.SetReady(false)
			}
			for _, w := range workers {
				go w.Drain()
			}
			sig = <-sigCh // escalate on a second signal
		}
		hard(sig)
	}()

	// SIGQUIT dumps live diagnostics — in-flight counts, snapshot
	// freshness, goroutine stacks — without exiting.
	quitCh := make(chan os.Signal, 1)
	signal.Notify(quitCh, syscall.SIGQUIT)
	go func() {
		for range quitCh {
			inFlight := 0
			for _, w := range workers {
				inFlight += w.InFlight()
			}
			lines := []string{
				fmt.Sprintf("worker %s: %d slot(s), %d job(s) in flight", *name, *parallel, inFlight),
			}
			if *snapDir == "" {
				lines = append(lines, "snapshots: off")
			} else if last := runner.LastSnapshotTime(); last.IsZero() {
				lines = append(lines, fmt.Sprintf("snapshots: none written yet (resumed=%d)", runner.Resumed()))
			} else {
				lines = append(lines, fmt.Sprintf("snapshots: last written %s ago (resumed=%d, write failures=%d)",
					time.Since(last).Round(time.Millisecond), runner.Resumed(), runner.SnapshotWriteFailures()))
			}
			obs.DumpDiagnostics(os.Stderr, "csaltd", lines)
		}
	}()

	if tel != nil {
		tel.Health.SetReady(true)
	}
	fmt.Fprintf(os.Stderr, "csaltd: %s pulling from %s (%d slot(s))\n", *name, *coordinator, *parallel)

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		runErr error
	)
	for _, w := range workers {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
				mu.Lock()
				if runErr == nil {
					runErr = err
				}
				mu.Unlock()
				if errors.Is(err, fabric.ErrKilled) {
					// A simulated crash kills the whole process, abandoning
					// every slot's lease — that is the point of the seam.
					cancel()
				}
			}
		}()
	}
	wg.Wait()

	if plane != nil && plane.Fired() > 0 {
		fmt.Fprintf(os.Stderr, "csaltd: chaos: %d faults injected:\n%s", plane.Fired(), plane.LogString())
	}
	select {
	case <-interrupted:
		os.Exit(exitInterrupted)
	default:
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "csaltd: %v\n", runErr)
		os.Exit(exitFailure)
	}
	fmt.Fprintln(os.Stderr, "csaltd: done")
}
