// Command benchreg runs the repository's benchmark suite plus a fixed
// simulator throughput probe, writes a schema-versioned BENCH_<date>.json
// report, and compares it against the most recent prior report in the
// same directory — exiting non-zero when anything slowed down beyond the
// threshold. `make bench-json` is the canonical invocation.
//
// Exit codes: 0 clean, 1 regression beyond threshold, 2 usage/run error.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"

	"github.com/csalt-sim/csalt/internal/benchreg"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		dir            = flag.String("dir", ".", "directory for BENCH_*.json reports (and the baseline search)")
		threshold      = flag.Float64("threshold", 0.10, "gate on slowdowns beyond this fraction (0.10 = 10%)")
		benchPat       = flag.String("bench", ".", "go test -bench pattern")
		benchtime      = flag.String("benchtime", "1x", "go test -benchtime (1x: one iteration per bench)")
		skipGobench    = flag.Bool("skip-gobench", false, "skip the go test -bench suite")
		skipProbe      = flag.Bool("skip-probe", false, "skip the simulator throughput probe")
		probeRefs      = flag.Uint64("probe-refs", benchreg.DefaultProbeRefs, "probe references per core")
		baseline       = flag.String("baseline", "", "compare against this report instead of the latest prior BENCH_*.json")
		overheadRounds = flag.Int("overhead-rounds", 3, "best-of-N rounds per mode for the invariant-overhead measurement")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "benchreg: unexpected arguments %v\n", flag.Args())
		return 2
	}

	rep := benchreg.NewReport()
	rep.GoVersion = runtime.Version()

	if !*skipGobench {
		fmt.Fprintf(os.Stderr, "benchreg: running go test -bench %s -benchtime %s ...\n", *benchPat, *benchtime)
		out, err := runGoBench(*benchPat, *benchtime)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreg: bench suite failed: %v\n%s\n", err, out)
			return 2
		}
		benches, err := benchreg.ParseGoBench(bytes.NewReader(out))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreg: %v\n", err)
			return 2
		}
		if len(benches) == 0 {
			fmt.Fprintf(os.Stderr, "benchreg: bench pattern %q matched nothing\n", *benchPat)
			return 2
		}
		rep.Benchmarks = benches
		fmt.Fprintf(os.Stderr, "benchreg: %d benchmarks recorded\n", len(benches))
	}

	if !*skipProbe {
		fmt.Fprintf(os.Stderr, "benchreg: running throughput probe (%d refs/core) ...\n", *probeRefs)
		probe, err := benchreg.RunProbe(*probeRefs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreg: %v\n", err)
			return 2
		}
		rep.Probe = probe
		fmt.Fprintf(os.Stderr, "benchreg: probe %.0f refs/s (digest %.12s)\n",
			probe.RefsPerSecond, probe.MetricsDigest)

		frac, err := benchreg.MeasureInvariantOverhead(*probeRefs, *overheadRounds)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreg: %v\n", err)
			return 2
		}
		probe.InvariantOverheadFrac = frac
		fmt.Fprintf(os.Stderr, "benchreg: always-on invariant checks cost %+.2f%% throughput (bar <%.0f%%)\n",
			frac*100, benchreg.MaxInvariantOverheadFrac*100)

		ifrac, err := benchreg.MeasureIntrospectOverhead(*probeRefs, *overheadRounds)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreg: %v\n", err)
			return 2
		}
		probe.IntrospectOverheadFrac = ifrac
		fmt.Fprintf(os.Stderr, "benchreg: disabled introspection hooks cost %+.3f%% throughput (bar <%.0f%%)\n",
			ifrac*100, benchreg.MaxIntrospectOverheadFrac*100)

		afrac, err := benchreg.MeasureAttributionOverhead(*probeRefs, 2)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreg: %v\n", err)
			return 2
		}
		probe.AttributionOverheadFrac = afrac
		fmt.Fprintf(os.Stderr, "benchreg: attached attribution costs %+.0f%% wall time (informational)\n", afrac*100)
	}

	path := filepath.Join(*dir, rep.FileName())
	if err := benchreg.WriteReport(path, rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchreg: %v\n", err)
		return 2
	}
	fmt.Printf("benchreg: wrote %s\n", path)

	// The invariant- and introspection-overhead bars are absolute, not
	// relative to a baseline: the always-on safety net and the disabled
	// attribution hooks must stay cheap even on the first run.
	if rep.Probe != nil && rep.Probe.InvariantOverheadFrac > benchreg.MaxInvariantOverheadFrac {
		fmt.Fprintf(os.Stderr, "benchreg: always-on invariant checks cost %.2f%% throughput, above the %.0f%% bar\n",
			rep.Probe.InvariantOverheadFrac*100, benchreg.MaxInvariantOverheadFrac*100)
		return 1
	}
	if rep.Probe != nil && rep.Probe.IntrospectOverheadFrac > benchreg.MaxIntrospectOverheadFrac {
		fmt.Fprintf(os.Stderr, "benchreg: disabled introspection hooks cost %.2f%% throughput, above the %.0f%% bar\n",
			rep.Probe.IntrospectOverheadFrac*100, benchreg.MaxIntrospectOverheadFrac*100)
		return 1
	}

	prior := *baseline
	if prior == "" {
		p, err := benchreg.LatestPrior(*dir, rep.FileName())
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreg: %v\n", err)
			return 2
		}
		prior = p
	}
	if prior == "" {
		fmt.Println("benchreg: no prior report — baseline established, nothing to compare")
		return 0
	}

	prev, err := benchreg.ReadReport(prior)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreg: %v\n", err)
		return 2
	}
	regs := benchreg.Compare(prev, rep, *threshold)
	if err := benchreg.Gate(regs); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n(baseline: %s)\n", err, prior)
		return 1
	}
	fmt.Printf("benchreg: no regressions beyond %.0f%% vs %s\n", *threshold*100, prior)
	return 0
}

// runGoBench executes every package's benchmark suite — the root
// macro-benchmarks plus the per-subsystem pairs in internal/tlb,
// internal/cache and internal/sim — and returns the combined output.
func runGoBench(pattern, benchtime string) ([]byte, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern,
		"-benchtime", benchtime, "-timeout", "30m", "./...")
	return cmd.CombinedOutput()
}
