// Command tracegen materialises the synthetic workload generators into
// binary trace files, and inspects existing ones.
//
//	tracegen -bench gups -n 1000000 -o gups.trace
//	tracegen -inspect gups.trace
//
// Traces use the compact varint format of internal/trace; the simulator's
// generators are deterministic, so a written trace replays the exact
// stream a live generator would feed the simulator with the same seed.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/csalt-sim/csalt/internal/mem"
	"github.com/csalt-sim/csalt/internal/trace"
	"github.com/csalt-sim/csalt/internal/workload"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		bench   = flag.String("bench", "gups", "benchmark to generate")
		n       = flag.Int("n", 1_000_000, "number of records")
		out     = flag.String("o", "", "output trace file")
		seed    = flag.Uint64("seed", 1, "generator seed")
		scale   = flag.Float64("scale", 0.25, "footprint scale")
		asid    = flag.Uint("asid", 1, "address-space id stamped on records")
		inspect = flag.String("inspect", "", "inspect an existing trace file instead of generating")
	)
	flag.Parse()

	if *inspect != "" {
		inspectTrace(*inspect)
		return
	}
	if *out == "" {
		fail("need -o <file> (or -inspect <file>)")
	}
	name, err := workload.Parse(*bench)
	if err != nil {
		fail("%v", err)
	}
	src, err := workload.New(name, workload.Params{
		ASID:  mem.ASID(*asid),
		Base:  0x10_0000_0000,
		Seed:  *seed,
		Scale: *scale,
	})
	if err != nil {
		fail("%v", err)
	}

	f, err := os.Create(*out)
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		fail("%v", err)
	}
	for i := 0; i < *n; i++ {
		r, ok := src.Next()
		if !ok {
			break
		}
		if err := w.Write(r); err != nil {
			fail("writing record %d: %v", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		fail("%v", err)
	}
	st, _ := f.Stat()
	fmt.Printf("wrote %d records of %s to %s (%d bytes, %.1f B/record)\n",
		*n, name, *out, st.Size(), float64(st.Size())/float64(*n))
}

func inspectTrace(path string) {
	f, err := os.Open(path)
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fail("%v", err)
	}
	var (
		records, loads, stores uint64
		instructions           uint64
		pages                  = map[uint64]bool{}
		asids                  = map[mem.ASID]bool{}
	)
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		records++
		instructions += rec.Instructions()
		if rec.Kind == trace.Store {
			stores++
		} else {
			loads++
		}
		pages[mem.PageNumber(rec.Addr, mem.Page4K)] = true
		asids[rec.ASID] = true
	}
	if err := r.Err(); err != nil {
		fail("trace corrupt after %d records: %v", records, err)
	}
	fmt.Printf("%s: %d records (%d loads, %d stores), %d instructions\n",
		path, records, loads, stores, instructions)
	fmt.Printf("distinct 4K pages: %d (%.1f MB footprint), address spaces: %d\n",
		len(pages), float64(len(pages))*4096/1e6, len(asids))
}
