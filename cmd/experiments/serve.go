package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/csalt-sim/csalt/internal/checkpoint"
	"github.com/csalt-sim/csalt/internal/experiment"
	"github.com/csalt-sim/csalt/internal/fabric"
	"github.com/csalt-sim/csalt/internal/telemetry"
)

// serveOpts carries the coordinator-mode configuration from main.
type serveOpts struct {
	addr            string
	scale           experiment.Scale
	todo            []experiment.Experiment
	resultsDir      string
	resume          bool
	keepGoing       bool
	jobTimeout      time.Duration
	leaseTTL        time.Duration
	hedgeAfter      time.Duration
	quarantineAfter int
	localWorkers    int
	stallCycles     uint64
	check           bool
	quiet           bool
}

// runServe is coordinator mode (-serve): shard the deduplicated job space
// of the requested experiments over pull workers (cmd/csaltd, plus any
// -local-workers started in-process), survive worker crashes, stragglers,
// poisoned jobs and coordinator restarts, and render the tables
// byte-identical to a single-process run. Never returns.
func runServe(o serveOpts) {
	// The engine is only the job enumerator here: the same deduplicated
	// (mix × config) space -parallel would execute locally.
	eng := experiment.NewEngine(o.scale, 1)
	jobs := eng.Jobs(o.todo...)

	dir := o.resultsDir
	if dir == "" {
		// Ephemeral ledger: correctness (idempotence, restart recovery
		// within the run, byte-identical renders) without durable output.
		tmp, err := os.MkdirTemp("", "csalt-fabric-*")
		if err != nil {
			usageFail("%v", err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
		fmt.Fprintf(os.Stderr, "serve: no -results-dir; ephemeral ledger in %s\n", dir)
	}
	if o.resume {
		fsck, err := checkpoint.Fsck(dir)
		if err != nil {
			usageFail("%v", err)
		}
		if fsck.TornTail > 0 {
			fmt.Fprintf(os.Stderr, "fsck: torn %d-byte tail in %s (crash mid-append); truncating on replay\n",
				fsck.TornTail, fsck.Path)
		}
	}
	store, err := checkpoint.Open(dir, o.resume)
	if err != nil {
		usageFail("%v", err)
	}
	defer store.Close()
	// A long-lived ledger accumulates superseded duplicates across
	// restarts; compact when more than half the records are dead weight.
	if store.Records() > 2*store.Len() {
		if removed, err := store.Compact(); err != nil {
			fmt.Fprintf(os.Stderr, "serve: compact: %v\n", err)
		} else if removed > 0 {
			fmt.Fprintf(os.Stderr, "serve: compacted ledger (%d duplicate records removed)\n", removed)
		}
	}

	coord, err := fabric.NewCoordinator(fabric.CoordinatorOptions{
		Jobs: jobs, Store: store,
		LeaseTTL: o.leaseTTL, HedgeAfter: o.hedgeAfter,
		QuarantineAfter: o.quarantineAfter,
		Backoff:         experiment.DefaultBackoff(1),
		KeepGoing:       o.keepGoing, JobTimeout: o.jobTimeout,
	})
	if err != nil {
		usageFail("%v", err)
	}

	// The fabric wire protocol and the telemetry plane share one listener:
	// workers POST to /fabric/v1/*, humans scrape /metrics and /runs.
	tel := telemetry.NewServer()
	defer tel.Close()
	tel.AttachStore(store)
	tel.AttachFabric(coord)
	if !o.quiet {
		coord.OnEvent(func(ev fabric.Event) {
			switch ev.Type {
			case "worker_seen", "lease_expired", "hedge", "quarantine", "drain", "done":
				fmt.Fprintf(os.Stderr, "serve: %s %s %s %s\n", ev.Type, ev.Worker, ev.Label, ev.Detail)
			}
		})
	}
	tel.Handle(fabric.PathPrefix, coord.Handler())
	lis, err := net.Listen("tcp", o.addr)
	if err != nil {
		usageFail("serve: %v", err)
	}
	httpSrv := &http.Server{Handler: tel.Handler()}
	go httpSrv.Serve(lis) //nolint:errcheck // Serve returns on Close
	defer httpSrv.Close()
	baseURL := "http://" + lis.Addr().String()
	fmt.Fprintf(os.Stderr, "serve: coordinating %d jobs on %s (fabric API under /fabric/v1/)\n",
		len(jobs), baseURL)
	if st := coord.Stats(); st.JobsRecovered > 0 {
		fmt.Fprintf(os.Stderr, "serve: recovered %d completed jobs from the ledger\n", st.JobsRecovered)
	}
	tel.Health.SetReady(true)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Optional in-process workers: a single-command distributed sweep (and
	// the CI smoke path). External csaltd processes can join at any time.
	runner := experiment.NewRunner(o.scale)
	runner.StallLimit = o.stallCycles
	runner.CheckInvariants = o.check
	runner.Retry = experiment.DefaultBackoff(1)
	for i := 0; i < o.localWorkers; i++ {
		w, err := fabric.NewWorker(fabric.WorkerOptions{
			Name: fmt.Sprintf("local/%d", i), BaseURL: baseURL, Runner: runner,
			Poll: 50 * time.Millisecond, Backoff: experiment.DefaultBackoff(1),
		})
		if err != nil {
			usageFail("%v", err)
		}
		go w.Run(ctx) //nolint:errcheck // lease expiry covers a dying local worker
	}

	waitErr := coord.Wait(ctx)
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "interrupted: %v\n", ctx.Err())
		if o.resultsDir != "" {
			fmt.Fprintf(os.Stderr, "completed results saved; rerun with -serve %s -results-dir %s -resume to continue\n",
				o.addr, o.resultsDir)
		}
		os.Exit(exitInterrupted)
	}
	st := coord.Stats()
	fmt.Fprintf(os.Stderr,
		"serve: sweep finished: %d jobs (%d recovered, %d reassignments, %d hedges, %d duplicates, %d retries, %d quarantined)\n",
		st.JobsTotal, st.JobsRecovered, st.Reassignments, st.Hedges, st.Duplicates, st.Retries, st.JobsQuarantined)
	if waitErr != nil {
		fmt.Fprintln(os.Stderr, "simulation failed:")
		for _, l := range errorLabels(waitErr) {
			fmt.Fprintf(os.Stderr, "  %s\n", l)
		}
		if !o.keepGoing {
			os.Exit(exitSimFailure)
		}
	}

	// Render sequentially from the ledger: completed jobs replay their
	// recorded bytes, quarantined jobs poison to ERR cells under
	// -keep-going — byte-identical to the local path at any worker count.
	renderer := coord.Renderer(o.scale)
	for _, e := range o.todo {
		table, err := e.Run(renderer)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(exitSimFailure)
		}
		fmt.Printf("# %s — %s\n", e.ID, e.Title)
		fmt.Printf("# paper: %s\n", e.PaperClaim)
		table.Render(os.Stdout)
		fmt.Println()
	}
	if waitErr != nil {
		os.Exit(exitSimFailure)
	}
	os.Exit(0)
}

// runFsck is -fsck: diagnose a results store, repair what is safely
// repairable (truncate a torn tail from a crash mid-append, drop
// superseded duplicate records), and report. Never returns.
func runFsck(dir string) {
	rep, err := checkpoint.Fsck(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsck: %v\n", err)
		os.Exit(exitSimFailure)
	}
	fmt.Printf("fsck %s: %d records, %d distinct keys\n", rep.Path, rep.Records, rep.Records-rep.Duplicates)
	if rep.TornTail > 0 {
		fmt.Printf("  torn tail: %d bytes (crash mid-append) — truncating\n", rep.TornTail)
	}
	if rep.Duplicates > 0 {
		fmt.Printf("  duplicates: %d superseded records — compacting\n", rep.Duplicates)
	}
	if rep.TornTail == 0 && rep.Duplicates == 0 {
		fmt.Println("  clean")
		return
	}
	// Opening in resume mode replays the log and truncates the torn tail;
	// Compact then rewrites the store with one record per key.
	store, err := checkpoint.Open(dir, true)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsck: repair: %v\n", err)
		os.Exit(exitSimFailure)
	}
	removed, err := store.Compact()
	store.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsck: compact: %v\n", err)
		os.Exit(exitSimFailure)
	}
	fmt.Printf("  repaired: %d duplicate records removed, %d live records kept\n", removed, store.Len())
}
