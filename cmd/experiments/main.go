// Command experiments regenerates the paper's tables and figures.
//
//	experiments -list
//	experiments -run fig7 -scale small
//	experiments -run all -scale paper -parallel 8
//
// Scales trade fidelity for time: "tiny" (seconds, 2 cores), "small"
// (default; full 8-core machine, scaled footprints), "paper" (full
// calibrated footprints; minutes per figure). See EXPERIMENTS.md for the
// recorded paper-vs-measured comparison.
//
// Simulations fan out across -parallel workers (default: all CPUs). The
// independent units are (workload mix × configuration) simulations; the
// rendered tables are merged in deterministic order and are byte-identical
// at every parallelism level, including -parallel 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/csalt-sim/csalt/internal/experiment"
	"github.com/csalt-sim/csalt/internal/obs"
)

func main() {
	var (
		list        = flag.Bool("list", false, "list available experiments")
		run         = flag.String("run", "", "experiment id to run, or 'all'")
		scale       = flag.String("scale", "small", "tiny | small | paper")
		parallel    = flag.Int("parallel", runtime.NumCPU(), "simulations to run concurrently (<=1 for sequential)")
		quiet       = flag.Bool("quiet", false, "suppress the per-job progress/ETA line on stderr")
		paperValues = flag.Bool("paper-values", false, "print the paper's reported values (optionally filtered by -run) and exit")
		metricsOut  = flag.String("metrics-out", "", "write the engine's throughput counters (JSON) to this file at exit")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	prof, err := obs.StartProfiling(*pprofAddr, *cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
		}
	}()

	if *paperValues {
		artifact := *run
		if artifact == "all" {
			artifact = ""
		}
		experiment.PaperTable(artifact).Render(os.Stdout)
		return
	}

	if *list || *run == "" {
		fmt.Println("Available experiments:")
		for _, e := range experiment.All() {
			fmt.Printf("  %-22s %s\n", e.ID, e.Title)
			fmt.Printf("  %-22s   paper: %s\n", "", e.PaperClaim)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id> or -run all")
		}
		return
	}

	sc, err := experiment.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var todo []experiment.Experiment
	if *run == "all" {
		todo = experiment.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := experiment.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(1)
			}
			todo = append(todo, e)
		}
	}

	if *parallel <= 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}
	eng := experiment.NewEngine(sc, *parallel)
	rep := newReporter(os.Stderr, *quiet)
	eng.Progress = rep.progress

	// One shared job pool for every requested experiment: baselines common
	// to several figures (e.g. the POM-TLB runs of Figs. 7/8/10/11) are
	// simulated once, and the pool keeps every worker busy across
	// experiment boundaries.
	jobs := eng.Jobs(todo...)
	start := time.Now()
	if err := eng.Execute(jobs); err != nil {
		rep.clear()
		fmt.Fprintf(os.Stderr, "simulation failed: %v\n", err)
		os.Exit(1)
	}
	rep.clear()
	simElapsed := time.Since(start)

	for _, e := range todo {
		table, err := e.Run(eng.Runner)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("# %s — %s\n", e.ID, e.Title)
		fmt.Printf("# paper: %s\n", e.PaperClaim)
		table.Render(os.Stdout)
		fmt.Println()
	}
	rep.summary(os.Stdout, sc.Name, *parallel, simElapsed, eng.Runner.NumRuns(), eng.Stats())

	if *metricsOut != "" {
		if err := writeEngineMetrics(*metricsOut, eng.Stats(), sc.Name, *parallel, simElapsed); err != nil {
			fmt.Fprintf(os.Stderr, "writing metrics: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeEngineMetrics exports the engine's throughput counters as JSON.
func writeEngineMetrics(path string, es experiment.EngineStats, scale string, parallel int, elapsed time.Duration) error {
	out := struct {
		Scale           string  `json:"scale"`
		Parallel        int     `json:"parallel"`
		ElapsedSeconds  float64 `json:"elapsed_seconds"`
		JobsRun         int     `json:"jobs_run"`
		JobWallSeconds  float64 `json:"job_wall_seconds"`
		SimCycles       uint64  `json:"sim_cycles"`
		SimInstructions uint64  `json:"sim_instructions"`
		CyclesPerSec    float64 `json:"cycles_per_second"`
	}{
		Scale: scale, Parallel: parallel, ElapsedSeconds: elapsed.Seconds(),
		JobsRun: es.JobsRun, JobWallSeconds: es.JobWall.Seconds(),
		SimCycles: es.SimCycles, SimInstructions: es.SimInstructions,
		CyclesPerSec: es.CyclesPerSecond(),
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
