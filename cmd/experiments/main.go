// Command experiments regenerates the paper's tables and figures.
//
//	experiments -list
//	experiments -run fig7 -scale small
//	experiments -run all -scale paper -parallel 8
//	experiments -run all -results-dir out/sweep        # durable results
//	experiments -run all -results-dir out/sweep -resume # continue a killed sweep
//
// Scales trade fidelity for time: "tiny" (seconds, 2 cores), "small"
// (default; full 8-core machine, scaled footprints), "paper" (full
// calibrated footprints; minutes per figure). See EXPERIMENTS.md for the
// recorded paper-vs-measured comparison.
//
// Simulations fan out across -parallel workers (default: all CPUs). The
// independent units are (workload mix × configuration) simulations; the
// rendered tables are merged in deterministic order and are byte-identical
// at every parallelism level, including -parallel 1 — and, with
// -results-dir/-resume, identical whether the sweep ran uninterrupted or
// was killed and resumed (see ROBUSTNESS.md).
//
// Fault tolerance: SIGINT/SIGTERM cancel the sweep cleanly (completed
// results stay durable under -results-dir and -metrics-out still flushes);
// -keep-going runs every job past failures and renders failed cells as
// ERR; -job-timeout bounds each job's wall-clock time; -stall-cycles arms
// the in-simulator forward-progress watchdog; -check arms mid-run model
// invariant verification on every simulation. -snapshot-every N (with
// -results-dir) additionally writes a durable snapshot of every in-flight
// simulation each N steps, so a killed sweep resumes even its interrupted
// jobs mid-run instead of from cycle zero (see ROBUSTNESS.md, "Mid-run
// snapshots"). SIGQUIT dumps live diagnostics — goroutine stacks, engine
// stats, snapshot age — to stderr without stopping the sweep.
//
// Fault injection (see ROBUSTNESS.md, "Fault injection"): -chaos attaches
// a deterministic fault schedule to the sweep's seams, e.g.
//
//	experiments -run fig3 -scale tiny -results-dir out -chaos "checkpoint.write:err@3;job.panic:gups"
//
// and -chaos-sweep N runs the self-checking harness: N seeded schedules
// against a tiny fig3 sweep, each required to end clean or to fail
// classified and resume to byte-identical tables.
//
// Distributed sweeps (see ROBUSTNESS.md, "Distributed sweeps"): -serve
// ADDR runs the sweep as a coordinator for cmd/csaltd pull workers —
// jobs are leased with deadlines, crashed or stalled workers forfeit
// their leases, stragglers can be hedged (-hedge-after), poisoned jobs
// are quarantined (-quarantine-after), and the final tables are
// byte-identical to a local run under any failure schedule.
// -local-workers N starts in-process workers alongside; external
// workers can join at any time. The telemetry plane and the /fabric/v1
// API share the -serve listener. -fsck (with -results-dir) checks and
// repairs a results store in place: it truncates a torn tail and
// compacts duplicate records.
//
// Exit codes: 0 success, 1 simulation failure (failing job labels on
// stderr), 2 usage/config error, 130 interrupted by signal.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"github.com/csalt-sim/csalt/internal/chaos"
	"github.com/csalt-sim/csalt/internal/checkpoint"
	"github.com/csalt-sim/csalt/internal/experiment"
	"github.com/csalt-sim/csalt/internal/faultinject"
	"github.com/csalt-sim/csalt/internal/introspect"
	"github.com/csalt-sim/csalt/internal/obs"
	"github.com/csalt-sim/csalt/internal/sim"
	"github.com/csalt-sim/csalt/internal/snapshot"
	"github.com/csalt-sim/csalt/internal/telemetry"
)

// Exit codes: usage/config errors are distinguishable from simulation
// failures so sweep scripts can tell a typo from a broken run.
const (
	exitSimFailure  = 1
	exitUsage       = 2
	exitInterrupted = 130
)

// usageFail reports a usage/configuration error and exits 2.
func usageFail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(exitUsage)
}

func main() {
	var (
		list        = flag.Bool("list", false, "list available experiments")
		run         = flag.String("run", "", "experiment id to run, or 'all'")
		scale       = flag.String("scale", "small", "tiny | small | paper")
		engine      = flag.String("engine", "", "simulation engine: fast (default) | reference; tables are byte-identical either way")
		parallel    = flag.Int("parallel", runtime.NumCPU(), "simulations to run concurrently (<=1 for sequential)")
		quiet       = flag.Bool("quiet", false, "suppress the per-job progress/ETA line on stderr")
		paperValues = flag.Bool("paper-values", false, "print the paper's reported values (optionally filtered by -run) and exit")
		metricsOut  = flag.String("metrics-out", "", "write the engine's throughput counters (JSON) to this file at exit")
		keepGoing   = flag.Bool("keep-going", false, "run every job past failures; failed cells render as ERR and the exit code is still 1")
		resultsDir  = flag.String("results-dir", "", "persist each completed result to an append-only store in this directory")
		resume      = flag.Bool("resume", false, "replay completed results from -results-dir instead of re-simulating them")
		snapEvery   = flag.Uint64("snapshot-every", 0, "with -results-dir: write a durable mid-run snapshot of every in-flight simulation each N steps, and resume interrupted jobs from their newest valid snapshot (0 = off; see ROBUSTNESS.md)")
		jobTimeout  = flag.Duration("job-timeout", 0, "per-job wall-clock deadline (0 = none); an overrunning job fails, the sweep continues per -keep-going")
		stallCycles = flag.Uint64("stall-cycles", 10_000_000, "in-simulator watchdog: fail a job if no instruction retires for this many simulated cycles (0 = off)")
		retries     = flag.Int("retries", 0, "bounded retries for transient job failures")
		check       = flag.Bool("check", false, "arm mid-run model invariant checking on every simulation (the cheap end-of-run pass always runs)")
		chaosSpec   = flag.String("chaos", "", "deterministic fault-injection schedule, e.g. 'checkpoint.write:err@3;job.panic:gups' (see ROBUSTNESS.md)")
		chaosSweep  = flag.Int("chaos-sweep", 0, "run the chaos harness: this many seeded fault schedules against a tiny fig3 sweep")
		chaosSeed   = flag.Uint64("chaos-seed", 1, "base seed for -chaos-sweep schedules")
		attrOut     = flag.String("attr-out", "", "attach the cycle/miss-attribution plane to every simulation and write per-configuration reports (JSON) into this directory")
		heatmapCSV  = flag.String("heatmap-csv", "", "write each simulation's per-set occupancy/contention heatmaps (CSV) into this directory")
		serveAddr   = flag.String("serve", "", "coordinator mode: shard the sweep over pull workers (cmd/csaltd) on this address; telemetry and the /fabric/v1 API share the listener")
		localWork   = flag.Int("local-workers", 0, "with -serve: start this many in-process workers (external csaltd workers can join at any time)")
		leaseTTL    = flag.Duration("lease-ttl", 15*time.Second, "with -serve: job-lease deadline; a worker silent past it forfeits the job")
		hedgeAfter  = flag.Duration("hedge-after", 0, "with -serve: re-dispatch a straggler job to an idle worker after this long in flight (0 = off); first result wins")
		quarantine  = flag.Int("quarantine-after", 3, "with -serve: permanent failures before a job is quarantined (ERR cell under -keep-going)")
		fsck        = flag.Bool("fsck", false, "check the -results-dir store: report and repair a torn tail (crash mid-append) and compact duplicate records")
		listen      = flag.String("listen", "", "serve the live telemetry plane on this address (e.g. localhost:9100): /metrics /healthz /readyz /events /runs")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	prof, err := obs.StartProfiling(*pprofAddr, *cpuProfile, *memProfile)
	if err != nil {
		usageFail("profiling: %v", err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
		}
	}()

	if *paperValues {
		artifact := *run
		if artifact == "all" {
			artifact = ""
		}
		experiment.PaperTable(artifact).Render(os.Stdout)
		return
	}

	if *fsck {
		if *resultsDir == "" {
			usageFail("-fsck needs -results-dir")
		}
		runFsck(*resultsDir)
		return
	}

	if *chaosSweep > 0 {
		runChaosSweep(*chaosSweep, *chaosSeed, *chaosSpec, *parallel)
		return
	}

	if *list || *run == "" {
		fmt.Println("Available experiments:")
		for _, e := range experiment.All() {
			fmt.Printf("  %-22s %s\n", e.ID, e.Title)
			fmt.Printf("  %-22s   paper: %s\n", "", e.PaperClaim)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id> or -run all")
		}
		return
	}

	sc, err := experiment.ScaleByName(*scale)
	if err != nil {
		usageFail("%v", err)
	}
	switch *engine {
	case "", sim.EngineFast, sim.EngineReference:
		sc.Engine = *engine
	default:
		usageFail("unknown engine %q (fast|reference)", *engine)
	}

	var todo []experiment.Experiment
	if *run == "all" {
		todo = experiment.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := experiment.ByID(strings.TrimSpace(id))
			if !ok {
				usageFail("unknown experiment %q (use -list)", id)
			}
			todo = append(todo, e)
		}
	}
	if *resume && *resultsDir == "" {
		usageFail("-resume needs -results-dir")
	}

	if *serveAddr != "" {
		runServe(serveOpts{
			addr: *serveAddr, scale: sc, todo: todo,
			resultsDir: *resultsDir, resume: *resume,
			keepGoing: *keepGoing, jobTimeout: *jobTimeout,
			leaseTTL: *leaseTTL, hedgeAfter: *hedgeAfter,
			quarantineAfter: *quarantine, localWorkers: *localWork,
			stallCycles: *stallCycles, check: *check, quiet: *quiet,
		})
		return // unreachable: runServe exits
	}

	if *parallel <= 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}
	eng := experiment.NewEngine(sc, *parallel)
	eng.KeepGoing = *keepGoing
	eng.JobTimeout = *jobTimeout
	eng.Runner.StallLimit = *stallCycles
	eng.Runner.MaxRetries = *retries
	eng.Runner.Retry = experiment.DefaultBackoff(1)
	eng.Runner.CheckInvariants = *check

	var snapDir string
	if *snapEvery > 0 {
		if *resultsDir == "" {
			usageFail("-snapshot-every needs -results-dir")
		}
		if *attrOut != "" || *heatmapCSV != "" {
			usageFail("-snapshot-every is incompatible with -attr-out/-heatmap-csv: the introspection plane carries state snapshots do not cover")
		}
		snapDir = filepath.Join(*resultsDir, "snapshots")
		eng.Runner.SnapshotDir = snapDir
		eng.Runner.SnapshotEvery = *snapEvery
	}

	var plane *faultinject.Plane
	if *chaosSpec != "" {
		sched, err := faultinject.Parse(*chaosSpec)
		if err != nil {
			usageFail("%v", err)
		}
		plane = faultinject.New(sched)
		eng.Runner.Chaos = plane
	}

	var store *checkpoint.Store
	if *resultsDir != "" {
		if *resume {
			// Diagnose a damaged store up front: a benign torn tail (crash
			// mid-append) is repaired by replay, anything else refuses to
			// resume rather than silently dropping results.
			fsck, err := checkpoint.Fsck(*resultsDir)
			if err != nil {
				usageFail("%v", err)
			}
			if fsck.TornTail > 0 {
				fmt.Fprintf(os.Stderr, "fsck: torn %d-byte tail in %s (crash mid-append); truncating on replay\n",
					fsck.TornTail, fsck.Path)
			}
		}
		store, err = checkpoint.Open(*resultsDir, *resume)
		if err != nil {
			usageFail("%v", err)
		}
		defer store.Close()
		eng.Runner.Store = store
		store.SetChaos(plane)
		if *resume && store.Replayed() > 0 {
			fmt.Fprintf(os.Stderr, "resuming: %d completed results on record\n", store.Replayed())
		}
	}

	rep := newReporter(os.Stderr, *quiet)
	eng.Progress = rep.progress

	// Opt-in live telemetry: Prometheus exposition, health/readiness, SSE
	// progress and the run inventory, all fed from the engine and runner
	// without perturbing the simulations (see OBSERVABILITY.md).
	var tel *telemetry.Server
	if *listen != "" {
		tel, err = telemetry.Start(*listen)
		if err != nil {
			usageFail("%v", err)
		}
		defer tel.Close()
		tel.AttachEngine(eng)
		tel.AttachRunner(eng.Runner)
		tel.Events.SetChaos(plane)
		if store != nil {
			tel.AttachStore(store)
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/{metrics,healthz,readyz,events,runs}\n", tel.Addr())
	}

	// Opt-in attribution: chain onto any Observe hooks telemetry installed
	// so the plane attaches after the observer on every system.
	if *attrOut != "" || *heatmapCSV != "" {
		if err := attachAttribution(eng.Runner, *attrOut, *heatmapCSV); err != nil {
			usageFail("%v", err)
		}
	}

	// Ctrl-C / SIGTERM cancel the sweep cooperatively: in-flight
	// simulations stop within a few hundred steps, completed results stay
	// durable in the store, and the metrics/summary still flush below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if snapDir != "" {
		// A signal also drains the snapshot plane: every in-flight
		// simulation writes a final snapshot at its next poll boundary
		// (best effort — when cancellation wins the race at a boundary the
		// job falls back to its last periodic snapshot).
		go func() {
			<-ctx.Done()
			eng.Runner.SnapshotStopAll()
		}()
	}
	watchSIGQUIT(eng, snapDir)

	// One shared job pool for every requested experiment: baselines common
	// to several figures (e.g. the POM-TLB runs of Figs. 7/8/10/11) are
	// simulated once, and the pool keeps every worker busy across
	// experiment boundaries.
	jobs := eng.Jobs(todo...)
	if tel != nil {
		// The queue is primed: flip readiness for scrapers and orchestrators.
		tel.Health.SetReady(true)
	}
	start := time.Now()
	execErr := eng.ExecuteContext(ctx, jobs)
	rep.clear()
	simElapsed := time.Since(start)

	if plane != nil && plane.Fired() > 0 {
		fmt.Fprintf(os.Stderr, "chaos: %d faults injected:\n%s", plane.Fired(),
			indentLines(plane.LogString(), "  "))
	}
	if n := eng.Runner.Resumed(); n > 0 {
		fmt.Fprintf(os.Stderr, "snapshots: %d job(s) resumed from mid-run snapshots\n", n)
	}

	flushMetrics := func() {
		if *metricsOut == "" {
			return
		}
		if err := writeEngineMetrics(*metricsOut, eng.Stats(), sc.Name, *parallel, simElapsed); err != nil {
			fmt.Fprintf(os.Stderr, "writing metrics: %v\n", err)
		}
	}

	if ctx.Err() != nil {
		// Interrupted: flush what exists — metrics, the summary, and any
		// table whose jobs all completed before the signal landed.
		fmt.Fprintf(os.Stderr, "interrupted: %v\n", execErr)
		renderPartialTables(eng, todo)
		rep.summary(os.Stdout, sc.Name, *parallel, simElapsed, eng.Runner.NumRuns(), eng.Stats())
		flushMetrics()
		if store != nil {
			fmt.Fprintf(os.Stderr, "completed results saved; rerun with -results-dir %s -resume to continue\n", *resultsDir)
		}
		if snapDir != "" {
			if info, err := snapshot.ScanDir(snapDir); err == nil && info.Snapshots > 0 {
				fmt.Fprintf(os.Stderr, "snapshots: %d interrupted job(s) will resume mid-run\n", info.Snapshots)
			}
		}
		os.Exit(exitInterrupted)
	}
	if execErr != nil {
		fmt.Fprintln(os.Stderr, "simulation failed:")
		for _, l := range errorLabels(execErr) {
			fmt.Fprintf(os.Stderr, "  %s\n", l)
		}
		if !*keepGoing {
			flushMetrics()
			os.Exit(exitSimFailure)
		}
		// keep-going: fall through and render tables with ERR cells.
	}

	for _, e := range todo {
		table, err := e.Run(eng.Runner)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			flushMetrics()
			os.Exit(exitSimFailure)
		}
		fmt.Printf("# %s — %s\n", e.ID, e.Title)
		fmt.Printf("# paper: %s\n", e.PaperClaim)
		table.Render(os.Stdout)
		fmt.Println()
	}
	rep.summary(os.Stdout, sc.Name, *parallel, simElapsed, eng.Runner.NumRuns(), eng.Stats())
	flushMetrics()
	if execErr != nil {
		os.Exit(exitSimFailure)
	}
}

// watchSIGQUIT dumps live diagnostics — engine throughput, snapshot
// freshness, goroutine stacks — to stderr on every SIGQUIT, without
// exiting, so a long sweep can be inspected in place.
func watchSIGQUIT(eng *experiment.Engine, snapDir string) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	go func() {
		for range ch {
			obs.DumpDiagnostics(os.Stderr, "experiments", statusLines(eng, snapDir))
		}
	}()
}

// statusLines summarises the engine and snapshot plane for the SIGQUIT
// diagnostics dump.
func statusLines(eng *experiment.Engine, snapDir string) []string {
	es := eng.Stats()
	lines := []string{
		fmt.Sprintf("jobs: run=%d replayed=%d failed=%d skipped=%d",
			es.JobsRun, es.JobsReplayed, es.JobsFailed, es.JobsSkipped),
		fmt.Sprintf("sim: %d cycles, %d instructions (%.3g cycles/s)",
			es.SimCycles, es.SimInstructions, es.CyclesPerSecond()),
	}
	if snapDir == "" {
		return append(lines, "snapshots: off")
	}
	if last := eng.Runner.LastSnapshotTime(); last.IsZero() {
		lines = append(lines, fmt.Sprintf("snapshots: none written yet (resumed=%d)", eng.Runner.Resumed()))
	} else {
		lines = append(lines, fmt.Sprintf("snapshots: last written %s ago (resumed=%d, write failures=%d)",
			time.Since(last).Round(time.Millisecond), eng.Runner.Resumed(), eng.Runner.SnapshotWriteFailures()))
	}
	if info, err := snapshot.ScanDir(snapDir); err == nil {
		lines = append(lines, fmt.Sprintf("snapshot dir: %d live, %d quarantined", info.Snapshots, info.Quarantined))
	}
	return lines
}

// runChaosSweep executes the self-checking fault-injection harness and
// exits: 0 when every schedule lands in an allowed outcome, 1 on any
// contract violation (an unclassifiable failure, a table that diverged
// from the chaos-free golden bytes, a resume that could not reproduce
// them).
func runChaosSweep(runs int, seed uint64, spec string, parallel int) {
	opts := chaos.Options{
		Seed:    seed,
		Runs:    runs,
		Workers: parallel,
		Log:     os.Stderr,
	}
	if spec != "" {
		sched, err := faultinject.Parse(spec)
		if err != nil {
			usageFail("%v", err)
		}
		opts.Schedule = sched
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := chaos.Sweep(ctx, opts)
	if rep != nil {
		fmt.Printf("chaos sweep: %d runs (%d clean, %d failed-and-resumed)\n",
			len(rep.Runs), rep.Clean, rep.Resumed)
		if len(rep.Classes) > 0 {
			fmt.Printf("failure classes: %v\n", rep.Classes)
		}
		fmt.Printf("seam coverage (runs in which each point fired):\n%s", indentLines(rep.CoverageString(), "  "))
	}
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "interrupted: %v\n", err)
		os.Exit(exitInterrupted)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos sweep FAILED: %v\n", err)
		os.Exit(exitSimFailure)
	}
}

// attachAttribution wires an introspection plane onto every simulated
// system and, when each run finishes, writes its attribution report and
// heatmaps into the given directories — one file per configuration,
// named <mix>_<org>_<scheme> like the chaos-plane job keys. Attribution
// is passive, so observed results still hit the memo cache and match
// unobserved runs byte for byte.
func attachAttribution(r *experiment.Runner, attrDir, heatDir string) error {
	for _, dir := range []string{attrDir, heatDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
	}
	prevObserve, prevDone := r.Observe, r.ObserveDone
	r.Observe = func(sys *sim.System) {
		if prevObserve != nil {
			prevObserve(sys)
		}
		sys.AttachIntrospection(introspect.NewPlane(introspect.Config{Cores: sys.Config().Cores}))
	}
	r.ObserveDone = func(sys *sim.System) {
		if prevDone != nil {
			defer prevDone(sys)
		}
		p := sys.Introspection()
		if p == nil {
			return
		}
		cfg := sys.Config()
		name := fmt.Sprintf("%s_%s_%s", cfg.Mix.ID, cfg.Org, cfg.Scheme)
		if attrDir != "" {
			writeAttrFile(filepath.Join(attrDir, name+".json"), p.WriteReport)
		}
		if heatDir != "" {
			writeAttrFile(filepath.Join(heatDir, name+".csv"), p.WriteHeatmapCSV)
		}
	}
	return nil
}

// writeAttrFile writes one attribution artifact, reporting failures to
// stderr without failing the sweep (the simulation result is already
// sound; only the diagnostic sidecar was lost).
func writeAttrFile(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "attribution: %v\n", err)
		return
	}
	if err := write(f); err != nil {
		fmt.Fprintf(os.Stderr, "attribution: writing %s: %v\n", path, err)
	}
	f.Close()
}

// indentLines prefixes every non-empty line, for block-quoted stderr dumps.
func indentLines(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}

// renderPartialTables prints every requested table whose full job list
// already has results (memo or store), and names the ones still missing
// work — the "partial tables" flush on the interrupt path. Tables with
// incomplete job lists are skipped rather than triggering inline
// re-simulation of the missing configurations.
func renderPartialTables(eng *experiment.Engine, todo []experiment.Experiment) {
	for _, e := range todo {
		complete := true
		for _, j := range eng.Jobs(e) {
			if !eng.Runner.Cached(j.Config) {
				complete = false
				break
			}
		}
		if !complete {
			fmt.Fprintf(os.Stderr, "# %s: incomplete, not rendered\n", e.ID)
			continue
		}
		table, err := e.Run(eng.Runner)
		if err != nil {
			fmt.Fprintf(os.Stderr, "# %s: render failed: %v\n", e.ID, err)
			continue
		}
		fmt.Printf("# %s — %s (completed before interrupt)\n", e.ID, e.Title)
		table.Render(os.Stdout)
		fmt.Println()
	}
}

// writeEngineMetrics exports the engine's throughput counters as JSON.
func writeEngineMetrics(path string, es experiment.EngineStats, scale string, parallel int, elapsed time.Duration) error {
	out := struct {
		Scale           string  `json:"scale"`
		Parallel        int     `json:"parallel"`
		ElapsedSeconds  float64 `json:"elapsed_seconds"`
		JobsRun         int     `json:"jobs_run"`
		JobsReplayed    int     `json:"jobs_replayed"`
		JobsFailed      int     `json:"jobs_failed"`
		JobsSkipped     int     `json:"jobs_skipped"`
		JobWallSeconds  float64 `json:"job_wall_seconds"`
		SimCycles       uint64  `json:"sim_cycles"`
		SimInstructions uint64  `json:"sim_instructions"`
		CyclesPerSec    float64 `json:"cycles_per_second"`
	}{
		Scale: scale, Parallel: parallel, ElapsedSeconds: elapsed.Seconds(),
		JobsRun: es.JobsRun, JobsReplayed: es.JobsReplayed,
		JobsFailed: es.JobsFailed, JobsSkipped: es.JobsSkipped,
		JobWallSeconds: es.JobWall.Seconds(),
		SimCycles:      es.SimCycles, SimInstructions: es.SimInstructions,
		CyclesPerSec: es.CyclesPerSecond(),
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// errorLabels extracts the per-job "label: cause" first lines from a
// joined execute error, for compact stderr reporting.
func errorLabels(err error) []string {
	var lines []string
	for _, e := range flattenJoined(err) {
		msg := e.Error()
		if i := strings.IndexByte(msg, '\n'); i >= 0 {
			msg = msg[:i]
		}
		lines = append(lines, msg)
	}
	return lines
}

// flattenJoined unwraps errors.Join trees into a flat list.
func flattenJoined(err error) []error {
	if err == nil {
		return nil
	}
	if u, ok := err.(interface{ Unwrap() []error }); ok {
		var out []error
		for _, e := range u.Unwrap() {
			out = append(out, flattenJoined(e)...)
		}
		return out
	}
	return []error{err}
}
