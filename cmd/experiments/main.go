// Command experiments regenerates the paper's tables and figures.
//
//	experiments -list
//	experiments -run fig7 -scale small
//	experiments -run all -scale paper
//
// Scales trade fidelity for time: "tiny" (seconds, 2 cores), "small"
// (default; full 8-core machine, scaled footprints), "paper" (full
// calibrated footprints; minutes per figure). See EXPERIMENTS.md for the
// recorded paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/csalt-sim/csalt/internal/experiment"
)

func main() {
	var (
		list        = flag.Bool("list", false, "list available experiments")
		run         = flag.String("run", "", "experiment id to run, or 'all'")
		scale       = flag.String("scale", "small", "tiny | small | paper")
		paperValues = flag.Bool("paper-values", false, "print the paper's reported values (optionally filtered by -run) and exit")
	)
	flag.Parse()

	if *paperValues {
		artifact := *run
		if artifact == "all" {
			artifact = ""
		}
		experiment.PaperTable(artifact).Render(os.Stdout)
		return
	}

	if *list || *run == "" {
		fmt.Println("Available experiments:")
		for _, e := range experiment.All() {
			fmt.Printf("  %-22s %s\n", e.ID, e.Title)
			fmt.Printf("  %-22s   paper: %s\n", "", e.PaperClaim)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id> or -run all")
		}
		return
	}

	sc, err := experiment.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	runner := experiment.NewRunner(sc)

	var todo []experiment.Experiment
	if *run == "all" {
		todo = experiment.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := experiment.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(1)
			}
			todo = append(todo, e)
		}
	}

	for _, e := range todo {
		start := time.Now()
		table, err := e.Run(runner)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("# %s — %s\n", e.ID, e.Title)
		fmt.Printf("# paper: %s\n", e.PaperClaim)
		table.Render(os.Stdout)
		fmt.Printf("# scale=%s elapsed=%s simulations=%d\n\n", sc.Name, time.Since(start).Round(time.Millisecond), runner.Runs)
	}
}
