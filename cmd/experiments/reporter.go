package main

import (
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/csalt-sim/csalt/internal/experiment"
)

// reporter is the single owner of the stderr status line: every progress,
// clear and summary write goes through it, so the -quiet check lives in
// exactly one place and an error path cannot leak a half-drawn line.
type reporter struct {
	out   io.Writer
	quiet bool
	live  bool // a status line is currently on screen
}

func newReporter(out io.Writer, quiet bool) *reporter {
	return &reporter{out: out, quiet: quiet}
}

// progress rewrites the status line after each completed job, including
// the job's simulated-cycle throughput from the engine's counters. Job
// failures print as durable FAIL lines (never overwritten by the status
// line), even under -quiet: a sweep that ends in exit 1 must say why.
func (r *reporter) progress(p experiment.Progress) {
	if p.Err != nil {
		r.clear()
		msg := p.Err.Error()
		if i := strings.IndexByte(msg, '\n'); i >= 0 {
			msg = msg[:i] // headline only; full stacks land in the final error dump
		}
		fmt.Fprintf(r.out, "FAIL [%d/%d] %s: %s\n", p.Done, p.Total, p.Label, msg)
	}
	if r.quiet {
		return
	}
	r.live = true
	line := fmt.Sprintf("[%d/%d] %s %s", p.Done, p.Total, p.Label, p.Elapsed.Round(time.Millisecond))
	if p.Failed > 0 {
		line += fmt.Sprintf(" [%d failed]", p.Failed)
	}
	if mcps := p.Throughput() / 1e6; mcps > 0 {
		line += fmt.Sprintf(" %.1f Mcyc/s", mcps)
	}
	line += fmt.Sprintf(" (eta %s)", p.ETA().Round(time.Second))
	fmt.Fprintf(r.out, "\r\033[K%s", line)
}

// clear erases the status line so subsequent output starts on a clean row.
// It is a no-op when quiet or when nothing is on screen.
func (r *reporter) clear() {
	if r.quiet || !r.live {
		return
	}
	r.live = false
	fmt.Fprint(r.out, "\r\033[K")
}

// summary prints the end-of-run throughput totals (on stdout rules: the
// caller passes the writer; the reporter only honours -quiet).
func (r *reporter) summary(w io.Writer, scale string, parallel int, elapsed time.Duration, runs int, es experiment.EngineStats) {
	fmt.Fprintf(w, "# scale=%s parallel=%d elapsed=%s simulations=%d\n",
		scale, parallel, elapsed.Round(time.Millisecond), runs)
	if es.JobsReplayed > 0 || es.JobsFailed > 0 || es.JobsSkipped > 0 {
		fmt.Fprintf(w, "# outcomes: %d run, %d replayed, %d failed, %d skipped\n",
			es.JobsRun, es.JobsReplayed, es.JobsFailed, es.JobsSkipped)
	}
	if es.JobsRun > 0 {
		fmt.Fprintf(w, "# throughput: %.1f Mcycles/s, %.1f Minstr/s (per-job wall %s)\n",
			es.CyclesPerSecond()/1e6,
			float64(es.SimInstructions)/es.JobWall.Seconds()/1e6,
			es.JobWall.Round(time.Millisecond))
	}
}
