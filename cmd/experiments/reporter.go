package main

import (
	"fmt"
	"io"
	"time"

	"github.com/csalt-sim/csalt/internal/experiment"
)

// reporter is the single owner of the stderr status line: every progress,
// clear and summary write goes through it, so the -quiet check lives in
// exactly one place and an error path cannot leak a half-drawn line.
type reporter struct {
	out   io.Writer
	quiet bool
	live  bool // a status line is currently on screen
}

func newReporter(out io.Writer, quiet bool) *reporter {
	return &reporter{out: out, quiet: quiet}
}

// progress rewrites the status line after each completed job, including
// the job's simulated-cycle throughput from the engine's counters.
func (r *reporter) progress(p experiment.Progress) {
	if r.quiet {
		return
	}
	r.live = true
	line := fmt.Sprintf("[%d/%d] %s %s", p.Done, p.Total, p.Label, p.Elapsed.Round(time.Millisecond))
	if mcps := p.Throughput() / 1e6; mcps > 0 {
		line += fmt.Sprintf(" %.1f Mcyc/s", mcps)
	}
	line += fmt.Sprintf(" (eta %s)", p.ETA().Round(time.Second))
	fmt.Fprintf(r.out, "\r\033[K%s", line)
}

// clear erases the status line so subsequent output starts on a clean row.
// It is a no-op when quiet or when nothing is on screen.
func (r *reporter) clear() {
	if r.quiet || !r.live {
		return
	}
	r.live = false
	fmt.Fprint(r.out, "\r\033[K")
}

// summary prints the end-of-run throughput totals (on stdout rules: the
// caller passes the writer; the reporter only honours -quiet).
func (r *reporter) summary(w io.Writer, scale string, parallel int, elapsed time.Duration, runs int, es experiment.EngineStats) {
	fmt.Fprintf(w, "# scale=%s parallel=%d elapsed=%s simulations=%d\n",
		scale, parallel, elapsed.Round(time.Millisecond), runs)
	if es.JobsRun > 0 {
		fmt.Fprintf(w, "# throughput: %.1f Mcycles/s, %.1f Minstr/s (per-job wall %s)\n",
			es.CyclesPerSecond()/1e6,
			float64(es.SimInstructions)/es.JobWall.Seconds()/1e6,
			es.JobWall.Round(time.Millisecond))
	}
}
